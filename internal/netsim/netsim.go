package netsim

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mca"
)

// Edge is a directed agent-to-agent channel.
type Edge struct {
	From, To mca.AgentID
}

// qcell is one queued message plus its content digest, computed once at
// send time (messages are immutable) so the explorers' canonical keys
// never re-serialize queue contents.
type qcell struct {
	msg mca.Message
	h   [2]uint64
	// viewBuf and timesBuf are decode-owned backing storage, written
	// only by DecodeState for this slot. Live messages share their View
	// and InfoTimes slices across a broadcast fan-out and across
	// clones, so a decoder must never write into msg's own backing; a
	// scratch network decoded repeatedly instead reuses these per-slot
	// buffers and points msg at them.
	viewBuf  []mca.BidInfo
	timesBuf []int
}

// Network holds the in-transit messages. With Coalesce (the default used
// by verification), each directed edge carries at most the latest
// snapshot from its sender — the standard gossip abstraction for
// max-consensus protocols, which keeps the reachable state space finite.
// Without it, each edge is an unbounded FIFO queue.
//
// The agent graph is static, so channels live in dense edge-indexed
// arrays rather than a map: the explorers hit Send/Deliver/Pending
// millions of times per check, and array indexing plus reused backing
// storage keeps that hot path free of map overhead and steady-state
// allocation.
type Network struct {
	g        *graph.Graph
	coalesce bool
	maxDepth int // per-edge queue bound (0 = unbounded); tail coalesces when full
	n        int
	eids     []int32   // n*n dense lookup: from*n+to -> edge id, -1 if absent
	edges    []Edge    // static directed edges, sorted by (From, To)
	queues   [][]qcell // per edge id; backing reused across send/deliver cycles
	nonEmpty int       // number of edges currently carrying messages
	nbrs     [][]int   // sorted neighbor lists; immutable, shared by clones
}

// New creates an empty network over the agent graph. coalesce selects
// latest-snapshot semantics per edge.
func New(g *graph.Graph, coalesce bool) *Network {
	n := g.N()
	nbrs := make([][]int, n)
	eids := make([]int32, n*n)
	for i := range eids {
		eids[i] = -1
	}
	var edges []Edge
	for u := range nbrs {
		nbrs[u] = g.Neighbors(u)
		for _, v := range nbrs[u] {
			eids[u*n+v] = int32(len(edges))
			edges = append(edges, Edge{From: mca.AgentID(u), To: mca.AgentID(v)})
		}
	}
	return &Network{
		g: g, coalesce: coalesce, n: n,
		eids: eids, edges: edges,
		queues: make([][]qcell, len(edges)),
		nbrs:   nbrs,
	}
}

// eid resolves a directed edge to its dense index, panicking on edges
// absent from the agent graph (the same contract map-backed Send had).
func (n *Network) eid(e Edge) int32 {
	if e.From >= 0 && int(e.From) < n.n && e.To >= 0 && int(e.To) < n.n {
		if id := n.eids[int(e.From)*n.n+int(e.To)]; id >= 0 {
			return id
		}
	}
	panic(fmt.Sprintf("netsim: no edge %d->%d", e.From, e.To))
}

// Neighbors returns the sorted neighbor list of node u, cached at
// construction so the delivery hot paths never rebuild it. Callers must
// not modify the returned slice.
func (n *Network) Neighbors(u int) []int { return n.nbrs[u] }

// Graph returns the agent graph.
func (n *Network) Graph() *graph.Graph { return n.g }

// LimitQueueDepth bounds each directed edge to at most k in-flight
// messages: when full, the newest queued message is replaced by the new
// one (the head — the oldest in-flight message — is preserved, so stale
// deliveries remain representable). This mirrors the bounded message
// scope of the paper's Alloy analysis and keeps the explorer's state
// space finite. k <= 0 restores unbounded queues.
func (n *Network) LimitQueueDepth(k int) { n.maxDepth = k }

// Coalesce reports the channel semantics.
func (n *Network) Coalesce() bool { return n.coalesce }

// enqueue applies the channel semantics for one message on edge id.
func (n *Network) enqueue(id int32, m mca.Message, h [2]uint64) {
	q := n.queues[id]
	if len(q) == 0 {
		n.nonEmpty++
	} else if n.coalesce {
		n.queues[id] = append(q[:0], qcell{msg: m, h: h})
		return
	} else if n.maxDepth > 0 && len(q) >= n.maxDepth {
		q[len(q)-1] = qcell{msg: m, h: h}
		return
	}
	n.queues[id] = append(q, qcell{msg: m, h: h})
}

// Send enqueues a message on the edge (m.Sender, m.Receiver). The edge
// must exist in the agent graph.
func (n *Network) Send(m mca.Message) {
	id := n.eid(Edge{From: m.Sender, To: m.Receiver})
	n.enqueue(id, m, mca.MessageContentHash(m))
}

// Broadcast sends the snapshot function's output to every neighbor of
// agent from.
func (n *Network) Broadcast(from mca.AgentID, snapshot func(to mca.AgentID) mca.Message) {
	for _, nb := range n.nbrs[from] {
		n.Send(snapshot(mca.AgentID(nb)))
	}
}

// BroadcastAgent broadcasts the agent's current snapshot to every
// neighbor, building the shared payload (view copy, information-time
// vector, content digest) once for the whole fan-out instead of once
// per edge — the allocation-lean path the explorers drive.
func (n *Network) BroadcastAgent(a *mca.Agent) {
	nbrs := n.nbrs[a.ID()]
	if len(nbrs) == 0 {
		return
	}
	view, times := a.SnapshotParts()
	h := mca.MessageContentHash(mca.Message{View: view})
	from := a.ID()
	for _, nb := range nbrs {
		to := mca.AgentID(nb)
		id := n.eids[int(from)*n.n+nb]
		n.enqueue(id, mca.Message{Sender: from, Receiver: to, View: view, InfoTimes: times}, h)
	}
}

// Pending returns the edges that currently carry at least one message,
// in deterministic sorted order.
func (n *Network) Pending() []Edge {
	return n.PendingInto(make([]Edge, 0, n.nonEmpty))
}

// PendingInto appends the pending edges to buf (normally buf[:0] of a
// reused buffer) in the same deterministic sorted order as Pending,
// without allocating in steady state.
func (n *Network) PendingInto(buf []Edge) []Edge {
	for i, q := range n.queues {
		if len(q) > 0 {
			buf = append(buf, n.edges[i])
		}
	}
	return buf
}

// Quiescent reports whether no messages are in transit; the network
// counts non-empty edges on every queue mutation, so this is one
// compare on the explorers' per-state hot path.
func (n *Network) Quiescent() bool { return n.nonEmpty == 0 }

// InFlight counts in-transit messages.
func (n *Network) InFlight() int {
	c := 0
	for _, q := range n.queues {
		c += len(q)
	}
	return c
}

// Deliver pops the head message of the given edge. It panics if the edge
// is empty.
func (n *Network) Deliver(e Edge) mca.Message {
	return n.DeliverAt(e, 0)
}

// DeliverAt pops the i-th queued message of the given edge — the
// out-of-order delivery primitive behind the bounded-reordering fault
// model (i=0 is the plain FIFO Deliver). It panics when the slot does
// not exist.
func (n *Network) DeliverAt(e Edge, i int) mca.Message {
	id := n.eid(e)
	q := n.queues[id]
	if i < 0 || i >= len(q) {
		panic(fmt.Sprintf("netsim: deliver slot %d on edge %d->%d holding %d messages", i, e.From, e.To, len(q)))
	}
	m := q[i].msg
	copy(q[i:], q[i+1:]) // keep the backing array; queues are shallow
	n.queues[id] = q[:len(q)-1]
	if len(q) == 1 {
		n.nonEmpty--
	}
	return m
}

// QueueLen returns the number of messages queued on the edge without
// allocating (Queue copies; the fault runner only needs the count).
func (n *Network) QueueLen(e Edge) int { return len(n.queues[n.eid(e)]) }

// Queue returns the in-order messages currently queued on the edge.
// It allocates; the hot paths use ForEachQueued or the cell digests.
func (n *Network) Queue(e Edge) []mca.Message {
	q := n.queues[n.eid(e)]
	if len(q) == 0 {
		return nil
	}
	out := make([]mca.Message, len(q))
	for i, c := range q {
		out[i] = c.msg
	}
	return out
}

// Peek returns the head message of the edge without removing it.
func (n *Network) Peek(e Edge) (mca.Message, bool) {
	q := n.queues[n.eid(e)]
	if len(q) == 0 {
		return mca.Message{}, false
	}
	return q[0].msg, true
}

// ForEachQueued calls f for every in-transit message in deterministic
// order: edges sorted by (From, To), queue positions head first. The
// explorers' reference key serializer walks queue contents this way.
func (n *Network) ForEachQueued(f func(e Edge, m mca.Message)) {
	for i, q := range n.queues {
		for _, c := range q {
			f(n.edges[i], c.msg)
		}
	}
}

// ContentHash folds the timestamp-free content of every queued message
// — edge identity, queue position, and the per-cell digests cached at
// send time — into one 128-bit digest. Together with FoldTimeRanks it
// carries exactly the queue information the reference serializer
// encodes, at the cost of a few cached-word folds per in-flight
// message.
func (n *Network) ContentHash() [2]uint64 {
	h := [2]uint64{0x243f6a8885a308d3, 0x13198a2e03707344}
	for i, q := range n.queues {
		if len(q) == 0 {
			continue
		}
		h = mca.FoldHash(h, uint64(i)<<16|uint64(len(q)))
		for _, c := range q {
			h = mca.FoldHash(h, c.h[0])
			h = mca.FoldHash(h, c.h[1])
		}
	}
	return h
}

// AppendTimes appends every timestamp occurring in queued messages to
// ts, for the explorers' dense time ranking.
func (n *Network) AppendTimes(ts []int) []int {
	for _, q := range n.queues {
		for _, c := range q {
			ts = mca.AppendMessageTimes(ts, c.msg)
		}
	}
	return ts
}

// FoldTimeRanks folds the ranked timestamp slots of every queued
// message into h, in the same deterministic order as ContentHash, for a
// system of nAgents agents.
func (n *Network) FoldTimeRanks(h [2]uint64, r mca.Ranker, nAgents int) [2]uint64 {
	for i, q := range n.queues {
		if len(q) == 0 {
			continue
		}
		h = mca.FoldHash(h, uint64(i))
		for _, c := range q {
			h = mca.FoldMessageTimeRanks(h, c.msg, r, nAgents)
		}
	}
	return h
}

// Clone copies the network (used by the exhaustive explorers). Queue
// cells are copied but the Message values inside are shared: a message
// is immutable once sent (snapshots build fresh storage per broadcast,
// and receivers only read), so clones may alias message contents safely
// — which keeps cloning cheap on the explorers' hot path.
func (n *Network) Clone() *Network {
	return n.CloneInto(nil)
}

// CloneInto clones the network into dst, reusing dst's queue backing
// arrays when it was previously a clone of the same-shaped network —
// the pooling hook the parallel frontier uses to recycle per-state
// networks instead of allocating one per successor. A nil dst builds a
// fresh clone.
func (n *Network) CloneInto(dst *Network) *Network {
	if dst == nil {
		dst = &Network{queues: make([][]qcell, len(n.queues))}
	}
	queues := dst.queues
	*dst = *n
	dst.queues = queues
	if len(dst.queues) != len(n.queues) {
		dst.queues = make([][]qcell, len(n.queues))
	}
	for i, q := range n.queues {
		if len(q) == 0 {
			if len(dst.queues[i]) > 0 {
				dst.queues[i] = dst.queues[i][:0]
			}
			continue
		}
		dst.queues[i] = append(dst.queues[i][:0], q...)
		for k := range dst.queues[i] {
			// Decode buffers are per-network: sharing them between the
			// clone and the source would let two decoders corrupt each
			// other's cells.
			dst.queues[i][k].viewBuf = nil
			dst.queues[i][k].timesBuf = nil
		}
	}
	return dst
}

// appendUvarint / readUvarint are the wire primitives of the network's
// pointer-free state codec (LEB128).
func appendUvarint(buf []byte, u uint64) []byte {
	for u >= 0x80 {
		buf = append(buf, byte(u)|0x80)
		u >>= 7
	}
	return append(buf, byte(u))
}

func readUvarint(buf []byte) (uint64, []byte) {
	var u uint64
	var shift uint
	for i, b := range buf {
		u |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return u, buf[i+1:]
		}
		shift += 7
	}
	panic("netsim: truncated network state encoding")
}

// zig / unzig map signed values onto the uvarint space.
func zig(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendState appends a compact pointer-free encoding of every queued
// message (contents, cached digests, queue structure) to buf;
// DecodeState reverses it into a same-shaped network, reusing the
// target's cell and slice storage. The parallel frontier stores each
// pending state's network this way — one byte slice the garbage
// collector never scans, decoded into a per-shard scratch network on
// processing — instead of keeping a cloned Network per frontier item.
func (n *Network) AppendState(buf []byte) []byte {
	for i, q := range n.queues {
		if len(q) == 0 {
			continue
		}
		buf = appendUvarint(buf, uint64(i)+1) // edge sections, 0-terminated
		buf = appendUvarint(buf, uint64(len(q)))
		for _, c := range q {
			buf = appendUvarint(buf, c.h[0])
			buf = appendUvarint(buf, c.h[1])
			buf = appendUvarint(buf, uint64(len(c.msg.View)))
			for _, bi := range c.msg.View {
				buf = appendUvarint(buf, zig(bi.Bid))
				buf = appendUvarint(buf, zig(int64(bi.Winner)))
				buf = appendUvarint(buf, uint64(bi.Time))
			}
			buf = appendUvarint(buf, uint64(len(c.msg.InfoTimes)))
			for _, t := range c.msg.InfoTimes {
				buf = appendUvarint(buf, uint64(t))
			}
		}
	}
	return append(buf, 0)
}

// DecodeState restores queue contents from an AppendState encoding,
// returning the unconsumed remainder of buf. The network must have the
// same shape (graph and configuration) as the encoder; its queue, view,
// and info-time backing arrays are reused, so a scratch network decoded
// repeatedly reaches a steady state with no allocation.
func (n *Network) DecodeState(buf []byte) []byte {
	for i := range n.queues {
		n.queues[i] = n.queues[i][:0]
	}
	n.nonEmpty = 0
	var u uint64
	for {
		u, buf = readUvarint(buf)
		if u == 0 {
			return buf
		}
		id := int(u - 1)
		var cnt uint64
		cnt, buf = readUvarint(buf)
		q := n.queues[id]
		for k := 0; k < int(cnt); k++ {
			// Reuse the cell (and its message's slice backing) already
			// present in the backing array when there is one.
			if k < cap(q) {
				q = q[:k+1]
			} else {
				q = append(q, qcell{})
			}
			c := &q[k]
			c.h[0], buf = readUvarint(buf)
			c.h[1], buf = readUvarint(buf)
			var vl uint64
			vl, buf = readUvarint(buf)
			view := c.viewBuf[:0]
			for j := 0; j < int(vl); j++ {
				var bid, win, tm uint64
				bid, buf = readUvarint(buf)
				win, buf = readUvarint(buf)
				tm, buf = readUvarint(buf)
				view = append(view, mca.BidInfo{
					Bid: unzig(bid), Winner: mca.AgentID(unzig(win)), Time: int(tm),
				})
			}
			c.viewBuf = view
			var il uint64
			il, buf = readUvarint(buf)
			times := c.timesBuf[:0]
			for j := 0; j < int(il); j++ {
				var t uint64
				t, buf = readUvarint(buf)
				times = append(times, int(t))
			}
			c.timesBuf = times
			e := n.edges[id]
			c.msg = mca.Message{Sender: e.From, Receiver: e.To, View: view, InfoTimes: times}
		}
		n.queues[id] = q
		n.nonEmpty++
	}
}

// QueueSnapshot captures the queues of a few edges so a delivery can be
// tried on a network in place and rolled back — the explorers' cheap
// alternative to cloning the whole network per branch. A delivery on
// edge e can only touch e itself plus the receiver's outgoing edges
// (re-broadcast or reply), so capturing that set suffices. Snapshots
// copy cell values in both directions and own their backing storage, so
// a reused snapshot never aliases live queues.
type QueueSnapshot struct {
	ids   []int32
	saved [][]qcell
}

// Capture records the current queue contents of the given edges.
// The snapshot may be reused across Capture calls to amortize storage.
func (n *Network) Capture(snap *QueueSnapshot, edges ...Edge) {
	snap.ids = snap.ids[:0]
	for len(snap.saved) < len(edges) {
		snap.saved = append(snap.saved, nil)
	}
	for i, e := range edges {
		id := n.eid(e)
		snap.ids = append(snap.ids, id)
		snap.saved[i] = append(snap.saved[i][:0], n.queues[id]...)
	}
}

// Rollback reinstates the captured queues.
func (n *Network) Rollback(snap *QueueSnapshot) {
	for i, id := range snap.ids {
		q := n.queues[id]
		had, want := len(q) > 0, len(snap.saved[i]) > 0
		n.queues[id] = append(q[:0], snap.saved[i]...)
		if had != want {
			if want {
				n.nonEmpty++
			} else {
				n.nonEmpty--
			}
		}
	}
}

// AsyncOutcome summarizes a randomized asynchronous run.
type AsyncOutcome struct {
	// Converged reports quiescence with agreement.
	Converged bool
	// Deliveries is the number of messages processed.
	Deliveries int
	// Dropped is the number of messages lost to the fault model.
	Dropped int
	// Duplicated is the number of deliveries the fault model forked
	// into an extra in-flight copy (at-least-once delivery).
	Duplicated int
}

// RunAsync drives the agents with a seeded random delivery order until
// quiescence with agreement or until maxDeliveries messages have been
// processed. It is the simulation counterpart of the explorer: the same
// per-edge FIFO semantics and reply-on-disagreement rule, one random
// path instead of all paths. It is RunAsyncWith on a reliable network.
func RunAsync(agents []*mca.Agent, g *graph.Graph, seed int64, maxDeliveries int) AsyncOutcome {
	return RunAsyncWith(agents, g, AsyncConfig{Seed: seed, MaxDeliveries: maxDeliveries})
}
