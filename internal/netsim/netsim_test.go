package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/mca"
)

// infoVec builds a dense information-time vector with entry id set to t.
func infoVec(id mca.AgentID, t int) []int {
	v := make([]int, id+1)
	v[id] = t
	return v
}

func mkMsg(from, to mca.AgentID, bid int64) mca.Message {
	return mca.Message{
		Sender: from, Receiver: to,
		View:      []mca.BidInfo{{Bid: bid, Winner: from, Time: 1}},
		InfoTimes: infoVec(from, 1),
	}
}

func TestSendDeliverFIFO(t *testing.T) {
	n := New(graph.Complete(2), false)
	n.Send(mkMsg(0, 1, 5))
	n.Send(mkMsg(0, 1, 7))
	if n.InFlight() != 2 {
		t.Fatalf("in flight = %d", n.InFlight())
	}
	e := Edge{From: 0, To: 1}
	if m := n.Deliver(e); m.View[0].Bid != 5 {
		t.Fatalf("FIFO violated: got bid %d", m.View[0].Bid)
	}
	if m := n.Deliver(e); m.View[0].Bid != 7 {
		t.Fatal("second message lost")
	}
	if !n.Quiescent() {
		t.Fatal("network should be quiescent")
	}
}

func TestCoalesceKeepsLatest(t *testing.T) {
	n := New(graph.Complete(2), true)
	n.Send(mkMsg(0, 1, 5))
	n.Send(mkMsg(0, 1, 7))
	if n.InFlight() != 1 {
		t.Fatalf("coalesced in flight = %d, want 1", n.InFlight())
	}
	if m := n.Deliver(Edge{From: 0, To: 1}); m.View[0].Bid != 7 {
		t.Fatalf("coalesce must keep the latest message, got %d", m.View[0].Bid)
	}
}

func TestSendNoEdgePanics(t *testing.T) {
	n := New(graph.Line(3), true) // no edge 0-2
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing edge")
		}
	}()
	n.Send(mkMsg(0, 2, 1))
}

func TestDeliverEmptyPanics(t *testing.T) {
	n := New(graph.Complete(2), true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty deliver")
		}
	}()
	n.Deliver(Edge{From: 0, To: 1})
}

func TestPendingSortedDeterministic(t *testing.T) {
	n := New(graph.Complete(3), true)
	n.Send(mkMsg(2, 0, 1))
	n.Send(mkMsg(0, 1, 1))
	n.Send(mkMsg(1, 2, 1))
	p := n.Pending()
	if len(p) != 3 || p[0].From != 0 || p[1].From != 1 || p[2].From != 2 {
		t.Fatalf("pending = %v", p)
	}
}

func TestPeek(t *testing.T) {
	n := New(graph.Complete(2), true)
	if _, ok := n.Peek(Edge{From: 0, To: 1}); ok {
		t.Fatal("peek on empty edge")
	}
	n.Send(mkMsg(0, 1, 9))
	m, ok := n.Peek(Edge{From: 0, To: 1})
	if !ok || m.View[0].Bid != 9 {
		t.Fatal("peek broken")
	}
	if n.InFlight() != 1 {
		t.Fatal("peek must not consume")
	}
}

func TestCloneIndependent(t *testing.T) {
	n := New(graph.Complete(2), true)
	n.Send(mkMsg(0, 1, 9))
	c := n.Clone()
	c.Deliver(Edge{From: 0, To: 1})
	if n.InFlight() != 1 {
		t.Fatal("delivering on clone drained the original")
	}
}

func TestBroadcast(t *testing.T) {
	g := graph.Star(4)
	n := New(g, true)
	a := mca.MustNewAgent(mca.Config{ID: 0, Items: 1, Base: []int64{5},
		Policy: mca.Policy{Target: 1, Utility: mca.FlatUtility{}, Rebid: mca.RebidOnChange}})
	a.BidPhase()
	n.Broadcast(0, a.Snapshot)
	if n.InFlight() != 3 {
		t.Fatalf("hub broadcast should hit 3 spokes, got %d", n.InFlight())
	}
}

func asyncAgents(n, items int, seed int64) []*mca.Agent {
	rng := rand.New(rand.NewSource(seed))
	pol := mca.Policy{Target: items, Utility: mca.SubmodularResidual{}, Rebid: mca.RebidOnChange, ReleaseOutbid: true}
	agents := make([]*mca.Agent, n)
	for i := range agents {
		base := make([]int64, items)
		for j := range base {
			base[j] = int64(rng.Intn(30) + 1)
		}
		agents[i] = mca.MustNewAgent(mca.Config{ID: mca.AgentID(i), Items: items, Base: base, Policy: pol})
	}
	return agents
}

func TestRunAsyncConverges(t *testing.T) {
	agents := asyncAgents(4, 3, 5)
	g := graph.RandomConnected(4, 0.4, 5)
	out := RunAsync(agents, g, 99, 2000)
	if !out.Converged {
		t.Fatalf("async run did not converge: %+v", out)
	}
}

// Property: randomized asynchronous delivery converges conflict-free for
// honest sub-modular agents across seeds and topologies.
func TestRunAsyncConvergesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		items := 1 + rng.Intn(3)
		agents := asyncAgents(n, items, seed)
		g := graph.RandomConnected(n, 0.3, seed)
		out := RunAsync(agents, g, seed^0xABCD, 5000)
		if !out.Converged {
			return false
		}
		holder := make(map[mca.ItemID]mca.AgentID)
		for _, a := range agents {
			for _, j := range a.Bundle() {
				if prev, taken := holder[j]; taken && prev != a.ID() {
					return false
				}
				holder[j] = a.ID()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAsyncBudgetStopsOscillation(t *testing.T) {
	// The Fig. 2 pair under async delivery: never converges, budget
	// exhausts.
	pol := mca.Policy{Target: 2, Utility: mca.NonSubmodularSynergy{}, Rebid: mca.RebidOnChange, ReleaseOutbid: true}
	a1 := mca.MustNewAgent(mca.Config{ID: 0, Items: 2, Base: []int64{10, 15}, Policy: pol})
	a2 := mca.MustNewAgent(mca.Config{ID: 1, Items: 2, Base: []int64{15, 10}, Policy: pol})
	out := RunAsync([]*mca.Agent{a1, a2}, graph.Complete(2), 1, 400)
	if out.Converged {
		t.Fatalf("oscillating pair converged: %+v", out)
	}
	if out.Deliveries != 400 {
		t.Fatalf("expected full budget burn, got %d", out.Deliveries)
	}
}

func TestLimitQueueDepthCoalescesTail(t *testing.T) {
	n := New(graph.Complete(2), false)
	n.LimitQueueDepth(2)
	n.Send(mkMsg(0, 1, 1))
	n.Send(mkMsg(0, 1, 2))
	n.Send(mkMsg(0, 1, 3)) // replaces the tail (2), keeps the head (1)
	e := Edge{From: 0, To: 1}
	q := n.Queue(e)
	if len(q) != 2 {
		t.Fatalf("queue depth = %d, want 2", len(q))
	}
	if q[0].View[0].Bid != 1 || q[1].View[0].Bid != 3 {
		t.Fatalf("queue = [%d %d], want [1 3]", q[0].View[0].Bid, q[1].View[0].Bid)
	}
}

func TestLimitQueueDepthUnboundedWhenZero(t *testing.T) {
	n := New(graph.Complete(2), false)
	for i := int64(0); i < 5; i++ {
		n.Send(mkMsg(0, 1, i))
	}
	if n.InFlight() != 5 {
		t.Fatalf("unbounded queue held %d", n.InFlight())
	}
}

func TestCloneKeepsDepthLimit(t *testing.T) {
	n := New(graph.Complete(2), false)
	n.LimitQueueDepth(1)
	c := n.Clone()
	c.Send(mkMsg(0, 1, 1))
	c.Send(mkMsg(0, 1, 2))
	if c.InFlight() != 1 {
		t.Fatalf("clone lost the depth limit: %d in flight", c.InFlight())
	}
}

func TestGraphAndCoalesceAccessors(t *testing.T) {
	g := graph.Complete(2)
	n := New(g, true)
	if n.Graph() != g || !n.Coalesce() {
		t.Fatal("accessors broken")
	}
}
