package netsim

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/mca"
)

// Faults describes adversarial network conditions for the randomized
// asynchronous runner — the delivery semantics the paper's Alloy model
// cannot express (its netState signature assumes reliable, eventually
// delivered messages). All randomness is drawn from the run's seeded
// stream, so a (Faults, seed) pair reproduces the same execution.
type Faults struct {
	// Drop is the probability (0..1) that a message is lost at delivery
	// time instead of being processed by the receiver.
	Drop float64
	// DropEdge overrides Drop for specific directed edges.
	DropEdge map[Edge]float64
	// Delay holds every message for this many delivery ticks after it is
	// sent before it becomes eligible for delivery.
	Delay int
	// DelayEdge overrides Delay for specific directed edges.
	DelayEdge map[Edge]int
	// Duplicate is the probability (0..1) that a delivered message is
	// also re-enqueued at the tail of its channel — at-least-once
	// delivery with a per-delivery coin. The duplicate is a fresh send:
	// it re-enters the delay line at the current tick and competes for
	// future delivery slots, so duplication pressure consumes the run's
	// delivery budget rather than extending it.
	Duplicate float64
	// Reorder bounds in-channel overtaking: a delivery on an edge may
	// pop any of the first Reorder+1 deliverable messages of that
	// edge's queue instead of strictly the head. 0 keeps channels FIFO;
	// messages still held by the delay line or an active partition are
	// never eligible to overtake.
	Reorder int
	// Partitions groups nodes into isolated blocks. While the partition
	// is active, a message whose endpoints sit in different blocks is
	// lost at the cut when the partition is permanent (HealAfter 0), or
	// held at the cut and delivered once the partition heals otherwise.
	// Nodes absent from every block form one implicit extra block.
	Partitions [][]int
	// HealAfter ends the partition at this delivery tick; 0 keeps it
	// active for the whole run.
	HealAfter int
}

// None reports whether the fault model is empty (reliable network).
func (f Faults) None() bool {
	return f.Drop == 0 && len(f.DropEdge) == 0 &&
		f.Delay == 0 && len(f.DelayEdge) == 0 &&
		f.Duplicate == 0 && f.Reorder == 0 && len(f.Partitions) == 0
}

// Probabilistic reports whether the model has a random component
// (drops, duplication, reordering coins) as opposed to purely
// structural faults (delays, partitions).
func (f Faults) Probabilistic() bool {
	if f.Drop > 0 || f.Duplicate > 0 || f.Reorder > 0 {
		return true
	}
	for _, p := range f.DropEdge {
		if p > 0 {
			return true
		}
	}
	return false
}

// StaticPartitionOnly reports whether the model consists solely of a
// permanent partition — the one fault the exhaustive explorers can
// express exactly, by checking on the partition-masked agent graph.
func (f Faults) StaticPartitionOnly() bool {
	return !f.Probabilistic() && f.Delay == 0 && len(f.DelayEdge) == 0 &&
		len(f.Partitions) > 0 && f.HealAfter == 0
}

// blockOf maps each node to its partition block; nodes outside every
// block share the implicit block -1.
func (f Faults) blockOf(n int) []int {
	block := make([]int, n)
	for i := range block {
		block[i] = -1
	}
	for b, nodes := range f.Partitions {
		for _, u := range nodes {
			if u >= 0 && u < n {
				block[u] = b
			}
		}
	}
	return block
}

// ApplyPartitions returns g with every edge crossing a partition block
// removed — the subgraph a permanent partition leaves behind.
func (f Faults) ApplyPartitions(g *graph.Graph) *graph.Graph {
	if len(f.Partitions) == 0 {
		return g
	}
	block := f.blockOf(g.N())
	masked := g.Clone()
	for _, e := range g.Edges() {
		if block[e.U] != block[e.V] {
			masked.RemoveEdge(e.U, e.V)
		}
	}
	return masked
}

func (f Faults) dropProb(e Edge) float64 {
	if p, ok := f.DropEdge[e]; ok {
		return p
	}
	return f.Drop
}

func (f Faults) delayOf(e Edge) int {
	if d, ok := f.DelayEdge[e]; ok {
		return d
	}
	return f.Delay
}

// AsyncConfig parameterizes a randomized asynchronous run.
type AsyncConfig struct {
	// Seed drives the delivery order and the drop coin flips.
	Seed int64
	// MaxDeliveries caps the number of delivery ticks (processed plus
	// dropped messages).
	MaxDeliveries int
	// Faults is the network fault model; the zero value is a reliable
	// network, making RunAsyncWith a superset of RunAsync.
	Faults Faults
}

// RunAsyncWith drives the agents with a seeded random delivery order
// under the configured fault model until quiescence with agreement or
// until the delivery budget is spent. Dropped messages consume a
// delivery tick (the channel did work; the receiver saw nothing), so a
// lossy run terminates on the same budget as a reliable one.
func RunAsyncWith(agents []*mca.Agent, g *graph.Graph, cfg AsyncConfig) AsyncOutcome {
	n := New(g, false)
	fr := &faultRun{net: n, faults: cfg.Faults}
	if len(cfg.Faults.Partitions) > 0 {
		fr.block = cfg.Faults.blockOf(g.N())
	}
	if cfg.Faults.Delay > 0 || len(cfg.Faults.DelayEdge) > 0 ||
		(len(cfg.Faults.Partitions) > 0 && cfg.Faults.HealAfter > 0) {
		// Stamp every send from the start so the delay line stays aligned
		// with the FIFO queues (healing partitions hold messages on it).
		fr.readyAt = make(map[Edge][]int)
	}
	for _, a := range agents {
		if a.BidPhase() {
			fr.broadcast(a)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out AsyncOutcome
	for out.Deliveries+out.Dropped < cfg.MaxDeliveries {
		deliverable := fr.deliverable()
		if len(deliverable) == 0 {
			if n.Quiescent() {
				break
			}
			// Everything in flight is still delayed: advance the clock to
			// the earliest ready tick instead of spinning.
			fr.tick = fr.minReady()
			continue
		}
		e := deliverable[rng.Intn(len(deliverable))]
		m := fr.deliverNext(e, rng)
		// Each fault coin is drawn only when its knob is configured, so
		// a fault-free config replays exactly the same delivery sequence
		// as RunAsync — and adding a new fault model never perturbs
		// corpora that leave it zero.
		if p := cfg.Faults.Duplicate; p > 0 && rng.Float64() < p {
			// The duplicate is a fresh send on the same channel: it
			// re-enters the delay line at the current tick and is
			// delivered (or dropped) on a later tick of its own.
			out.Duplicated++
			fr.send(m)
		}
		if p := cfg.Faults.dropProb(e); p > 0 && rng.Float64() < p {
			out.Dropped++
			continue
		}
		out.Deliveries++
		receiver := agents[e.To]
		if receiver.HandleMessage(m) {
			fr.broadcast(receiver)
		} else if !receiver.ViewAgrees(m.View) {
			// The receiver kept a view that contradicts the sender's:
			// reply so the disagreement cannot silently persist at
			// quiescence.
			fr.send(receiver.Snapshot(m.Sender))
		}
	}
	if n.Quiescent() {
		agree := true
		for i := 1; i < len(agents); i++ {
			if !agents[0].AgreesWith(agents[i]) {
				agree = false
				break
			}
		}
		out.Converged = agree
	}
	return out
}

// faultRun wraps a Network with the fault bookkeeping of one run: the
// delivery clock, a per-edge FIFO of ready times parallel to the queue
// contents, and the partition block map.
type faultRun struct {
	net    *Network
	faults Faults
	block  []int // node -> partition block; nil when no partition
	tick   int   // advances once per delivery (processed or dropped)
	// readyAt[e][i] is the earliest tick the i-th queued message of edge
	// e may be delivered; aligned with the network's FIFO queue.
	readyAt map[Edge][]int
	// pendBuf is reused across deliverable calls (one per delivery tick).
	pendBuf []Edge
}

// partitioned reports whether the edge crosses an active partition cut.
func (fr *faultRun) partitioned(e Edge) bool {
	if fr.block == nil {
		return false
	}
	if fr.faults.HealAfter > 0 && fr.tick >= fr.faults.HealAfter {
		return false
	}
	return fr.block[e.From] != fr.block[e.To]
}

// send enqueues one message, applying partition cuts and stamping the
// delay line.
func (fr *faultRun) send(m mca.Message) {
	e := Edge{From: m.Sender, To: m.Receiver}
	if fr.partitioned(e) {
		if fr.faults.HealAfter <= 0 {
			return // permanent cut: the message is lost
		}
		// Healing cut: hold the message on the delay line until the
		// partition ends (plus any configured edge delay).
		fr.net.Send(m)
		ready := fr.faults.HealAfter
		if d := fr.tick + fr.faults.delayOf(e); d > ready {
			ready = d
		}
		fr.readyAt[e] = append(fr.readyAt[e], ready)
		return
	}
	fr.net.Send(m)
	if fr.readyAt != nil {
		fr.readyAt[e] = append(fr.readyAt[e], fr.tick+fr.faults.delayOf(e))
	}
}

func (fr *faultRun) broadcast(a *mca.Agent) {
	// Build the snapshot payload once for the fan-out; partition cuts and
	// delay stamping still run per edge in send.
	view, times := a.SnapshotParts()
	from := a.ID()
	for _, nb := range fr.net.Neighbors(int(from)) {
		fr.send(mca.Message{Sender: from, Receiver: mca.AgentID(nb), View: view, InfoTimes: times})
	}
}

// deliverable returns the pending edges whose head message is ready at
// the current tick, in the network's deterministic sorted order. The
// returned slice is reused across calls.
func (fr *faultRun) deliverable() []Edge {
	pending := fr.net.PendingInto(fr.pendBuf[:0])
	fr.pendBuf = pending
	if fr.readyAt == nil {
		return pending
	}
	out := pending[:0]
	for _, e := range pending {
		if r := fr.readyAt[e]; len(r) == 0 || r[0] <= fr.tick {
			out = append(out, e)
		}
	}
	return out
}

// minReady returns the earliest ready tick over all pending heads; it is
// only called when every pending head is delayed past the current tick.
func (fr *faultRun) minReady() int {
	min := -1
	fr.pendBuf = fr.net.PendingInto(fr.pendBuf[:0])
	for _, e := range fr.pendBuf {
		if r := fr.readyAt[e]; len(r) > 0 && (min == -1 || r[0] < min) {
			min = r[0]
		}
	}
	if min < 0 {
		return fr.tick
	}
	return min
}

// deliverNext pops one message from edge e — the head on FIFO
// channels, or a seeded pick from the reorder window when the fault
// model allows overtaking — removes its delay stamp, and advances the
// clock by one tick. The reorder coin is drawn only when the window
// genuinely offers a choice, so Reorder=0 configs replay the exact
// random stream they always did.
func (fr *faultRun) deliverNext(e Edge, rng *rand.Rand) mca.Message {
	idx := 0
	if k := fr.faults.Reorder; k > 0 {
		if w := fr.reorderWindow(e, k+1); w > 1 {
			idx = rng.Intn(w)
		}
	}
	m := fr.net.DeliverAt(e, idx)
	if fr.readyAt != nil {
		if r := fr.readyAt[e]; idx < len(r) {
			r = append(r[:idx], r[idx+1:]...)
			if len(r) == 0 {
				delete(fr.readyAt, e)
			} else {
				fr.readyAt[e] = r
			}
		}
	}
	fr.tick++
	return m
}

// reorderWindow returns how many messages at the front of edge e's
// queue are eligible for this delivery: at most max, clipped to the
// queue length and — when the delay line is active — to the prefix of
// messages already past their ready tick (delay stamps are
// non-decreasing along a queue, so the ready set is always a prefix).
func (fr *faultRun) reorderWindow(e Edge, max int) int {
	w := fr.net.QueueLen(e)
	if w > max {
		w = max
	}
	if fr.readyAt != nil {
		r := fr.readyAt[e]
		ready := 0
		for ready < len(r) && ready < w && r[ready] <= fr.tick {
			ready++
		}
		if len(r) > 0 && ready < w {
			w = ready
		}
	}
	return w
}
