package netsim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/mca"
)

func faultAgents(t *testing.T, n, items int) []*mca.Agent {
	t.Helper()
	out := make([]*mca.Agent, n)
	for i := 0; i < n; i++ {
		base := make([]int64, items)
		for j := range base {
			base[j] = int64(10 + 5*((i+j)%items))
		}
		a, err := mca.NewAgent(mca.Config{
			ID: mca.AgentID(i), Items: items, Base: base,
			Policy: mca.Policy{Target: items, Utility: mca.SubmodularResidual{}, Rebid: mca.RebidOnChange},
		})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = a
	}
	return out
}

func TestRunAsyncWithNoFaultsMatchesRunAsync(t *testing.T) {
	g := graph.Ring(4)
	for seed := int64(1); seed <= 5; seed++ {
		a := RunAsync(faultAgents(t, 4, 3), g, seed, 500)
		b := RunAsyncWith(faultAgents(t, 4, 3), g, AsyncConfig{Seed: seed, MaxDeliveries: 500})
		if a != b {
			t.Fatalf("seed %d: RunAsync=%+v RunAsyncWith=%+v", seed, a, b)
		}
		if !a.Converged {
			t.Fatalf("seed %d: reliable run did not converge", seed)
		}
	}
}

func TestRunAsyncWithIsDeterministic(t *testing.T) {
	g := graph.Complete(3)
	cfg := AsyncConfig{Seed: 42, MaxDeliveries: 300, Faults: Faults{Drop: 0.3, Delay: 2}}
	first := RunAsyncWith(faultAgents(t, 3, 2), g, cfg)
	for i := 0; i < 3; i++ {
		again := RunAsyncWith(faultAgents(t, 3, 2), g, cfg)
		if again != first {
			t.Fatalf("run %d diverged: %+v vs %+v", i, again, first)
		}
	}
}

func TestDropFaultLosesMessages(t *testing.T) {
	g := graph.Complete(3)
	out := RunAsyncWith(faultAgents(t, 3, 2), g, AsyncConfig{
		Seed: 7, MaxDeliveries: 400, Faults: Faults{Drop: 0.5},
	})
	if out.Dropped == 0 {
		t.Fatalf("drop=0.5 run dropped nothing: %+v", out)
	}
}

func TestCertainDropNeverConverges(t *testing.T) {
	g := graph.Complete(2)
	out := RunAsyncWith(faultAgents(t, 2, 2), g, AsyncConfig{
		Seed: 1, MaxDeliveries: 200, Faults: Faults{Drop: 1},
	})
	if out.Deliveries != 0 {
		t.Fatalf("drop=1 processed %d messages", out.Deliveries)
	}
	if out.Converged {
		t.Fatal("drop=1 converged despite total loss")
	}
}

func TestDelayPreservesConvergence(t *testing.T) {
	g := graph.Ring(4)
	out := RunAsyncWith(faultAgents(t, 4, 3), g, AsyncConfig{
		Seed: 3, MaxDeliveries: 2000, Faults: Faults{Delay: 5},
	})
	if !out.Converged {
		t.Fatalf("delayed but reliable run did not converge: %+v", out)
	}
}

func TestPerEdgeDelayOverride(t *testing.T) {
	g := graph.Complete(2)
	out := RunAsyncWith(faultAgents(t, 2, 2), g, AsyncConfig{
		Seed: 5, MaxDeliveries: 500,
		Faults: Faults{DelayEdge: map[Edge]int{{From: 0, To: 1}: 10}},
	})
	if !out.Converged {
		t.Fatalf("asymmetric delay broke convergence: %+v", out)
	}
}

func TestPermanentPartitionBlocksAgreement(t *testing.T) {
	g := graph.Complete(4)
	out := RunAsyncWith(faultAgents(t, 4, 2), g, AsyncConfig{
		Seed: 9, MaxDeliveries: 1000,
		Faults: Faults{Partitions: [][]int{{0, 1}, {2, 3}}},
	})
	if out.Converged {
		t.Fatal("agents agreed across a permanent partition")
	}
}

func TestHealedPartitionRecovers(t *testing.T) {
	g := graph.Complete(3)
	// Messages crossing a healing cut are held, not lost, so consensus
	// must complete once the partition ends.
	out := RunAsyncWith(faultAgents(t, 3, 2), g, AsyncConfig{
		Seed: 11, MaxDeliveries: 2000,
		Faults: Faults{Partitions: [][]int{{0}, {1, 2}}, HealAfter: 6},
	})
	if !out.Converged {
		t.Fatalf("partition healed but no convergence: %+v", out)
	}
}

func TestHealedTotalCutRecovers(t *testing.T) {
	// A star whose hub is cut off severs every edge: nothing is
	// deliverable while the partition is active, the clock must advance
	// to the heal tick, and the held messages then complete consensus.
	g := graph.Star(3)
	out := RunAsyncWith(faultAgents(t, 3, 2), g, AsyncConfig{
		Seed: 13, MaxDeliveries: 2000,
		Faults: Faults{Partitions: [][]int{{0}, {1, 2}}, HealAfter: 5},
	})
	if !out.Converged {
		t.Fatalf("total cut healed but no convergence: %+v", out)
	}
}

func TestApplyPartitionsMasksCrossEdges(t *testing.T) {
	g := graph.Complete(4)
	f := Faults{Partitions: [][]int{{0, 1}, {2, 3}}}
	masked := f.ApplyPartitions(g)
	if masked.HasEdge(0, 2) || masked.HasEdge(1, 3) {
		t.Fatal("cross-partition edge survived masking")
	}
	if !masked.HasEdge(0, 1) || !masked.HasEdge(2, 3) {
		t.Fatal("intra-partition edge removed")
	}
	if g.HasEdge(0, 2) != true {
		t.Fatal("original graph mutated")
	}
}

func TestFaultsClassification(t *testing.T) {
	if !(Faults{}).None() {
		t.Fatal("zero Faults not None")
	}
	if (Faults{Drop: 0.1}).None() || !(Faults{Drop: 0.1}).Probabilistic() {
		t.Fatal("drop misclassified")
	}
	if (Faults{Delay: 1}).Probabilistic() {
		t.Fatal("pure delay classified probabilistic")
	}
	if (Faults{Duplicate: 0.2}).None() || !(Faults{Duplicate: 0.2}).Probabilistic() {
		t.Fatal("duplication misclassified")
	}
	if (Faults{Reorder: 2}).None() || !(Faults{Reorder: 2}).Probabilistic() {
		t.Fatal("reordering misclassified")
	}
	f := Faults{Partitions: [][]int{{0}, {1}}}
	if !f.StaticPartitionOnly() {
		t.Fatal("permanent partition not static")
	}
	f.HealAfter = 3
	if f.StaticPartitionOnly() {
		t.Fatal("healing partition classified static")
	}
	f.HealAfter = 0
	f.Reorder = 1
	if f.StaticPartitionOnly() {
		t.Fatal("reordering partition classified static")
	}
}

func TestDuplicateFaultForksDeliveries(t *testing.T) {
	g := graph.Complete(3)
	out := RunAsyncWith(faultAgents(t, 3, 2), g, AsyncConfig{
		Seed: 17, MaxDeliveries: 2000, Faults: Faults{Duplicate: 0.5},
	})
	if out.Duplicated == 0 {
		t.Fatalf("duplicate=0.5 run forked nothing: %+v", out)
	}
	if !out.Converged {
		// Duplication is benign for max-consensus: re-processing an old
		// snapshot never un-learns information.
		t.Fatalf("at-least-once delivery broke convergence: %+v", out)
	}
}

func TestCertainDuplicationStillTerminates(t *testing.T) {
	g := graph.Ring(4)
	out := RunAsyncWith(faultAgents(t, 4, 3), g, AsyncConfig{
		Seed: 19, MaxDeliveries: 300, Faults: Faults{Duplicate: 1},
	})
	// Every delivery forks a copy, so the channel never drains; the run
	// must stop on its delivery budget instead of spinning.
	if out.Duplicated == 0 || out.Deliveries+out.Dropped > 300 {
		t.Fatalf("duplicate=1 budget accounting broken: %+v", out)
	}
}

func TestReorderPreservesConvergence(t *testing.T) {
	// Unbounded-window reordering over every topology the suite uses:
	// snapshots carry full views, so processing them out of order must
	// not lose information.
	for _, g := range []*graphCase{{graph.Ring(4), 4}, {graph.Star(4), 4}, {graph.Complete(3), 3}} {
		out := RunAsyncWith(faultAgents(t, g.n, 2), g.g, AsyncConfig{
			Seed: 23, MaxDeliveries: 4000, Faults: Faults{Reorder: 8},
		})
		if !out.Converged {
			t.Fatalf("reordered run on %d-node graph did not converge: %+v", g.n, out)
		}
	}
}

type graphCase struct {
	g *graph.Graph
	n int
}

func TestReorderWithDelayIsDeterministic(t *testing.T) {
	g := graph.Complete(3)
	cfg := AsyncConfig{Seed: 29, MaxDeliveries: 1500,
		Faults: Faults{Reorder: 3, Delay: 2, Duplicate: 0.3, Drop: 0.1}}
	first := RunAsyncWith(faultAgents(t, 3, 2), g, cfg)
	for i := 0; i < 3; i++ {
		again := RunAsyncWith(faultAgents(t, 3, 2), g, cfg)
		if again != first {
			t.Fatalf("run %d diverged: %+v vs %+v", i, again, first)
		}
	}
}

func TestDeliverAtPopsMiddleSlot(t *testing.T) {
	g := graph.Line(2)
	n := New(g, false)
	for i := 0; i < 3; i++ {
		n.Send(mca.Message{Sender: 0, Receiver: 1, InfoTimes: []int{i}})
	}
	e := Edge{From: 0, To: 1}
	if got := n.QueueLen(e); got != 3 {
		t.Fatalf("QueueLen = %d, want 3", got)
	}
	m := n.DeliverAt(e, 1)
	if m.InfoTimes[0] != 1 {
		t.Fatalf("DeliverAt(1) popped message %d", m.InfoTimes[0])
	}
	if got := n.Queue(e); len(got) != 2 || got[0].InfoTimes[0] != 0 || got[1].InfoTimes[0] != 2 {
		t.Fatalf("queue after middle pop: %+v", got)
	}
}
