// Package netsim simulates the asynchronous message network between MCA
// agents: one logical channel per directed edge of the agent graph,
// holding unprocessed bid messages in transit. It corresponds to the
// buffMsgs relation of the paper's netState signature.
//
// Two layers use it: the randomized asynchronous runner here (RunAsync
// and RunAsyncWith — seeded, for simulation experiments), and the
// exhaustive interleaving explorer in internal/explore (which drives
// Network directly, snapshotting and rolling back channel queues).
//
// Faults models the adversarial networks the paper's Alloy model cannot
// express: global and per-edge message drop probabilities, fixed and
// per-edge delivery delays, at-least-once duplication (Duplicate),
// bounded in-channel reordering (Reorder), and network partitions that
// may heal at a tick. Permanent partitions are purely structural
// (StaticPartitionOnly), which is why the exhaustive engines can check
// them exactly on the partition-masked graph, while probabilistic and
// timed faults belong to the seeded simulation.
//
// Determinism: RunAsyncWith is deterministic in (agents, graph,
// AsyncConfig) — the delivery schedule and every fault coin flip derive
// from the seed — so simulation verdicts are reproducible and
// cacheable. A Network value is single-goroutine state; checkers that
// parallelize keep one replica per worker.
package netsim
