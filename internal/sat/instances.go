package sat

// PigeonholeCNF builds PHP(n+1, n): n+1 pigeons into n holes. The
// family is unsatisfiable and exponentially hard for resolution-based
// solvers, which makes it the standard calibrated-difficulty instance
// for the cancellation tests and the portfolio/cube benchmarks.
func PigeonholeCNF(n int) *CNF {
	f := &CNF{NumVars: (n + 1) * n}
	v := func(i, j int) Var { return Var(i*n + j) }
	for i := 0; i <= n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = PosLit(v(i, j))
		}
		f.AddClause(lits...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				f.AddClause(NegLit(v(i, j)), NegLit(v(k, j)))
			}
		}
	}
	return f
}
