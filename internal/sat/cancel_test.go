package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCancelStopsSearch(t *testing.T) {
	// PHP(11,10) takes far longer than the cancel budget; the solver must
	// come back with UNKNOWN shortly after the check starts firing.
	f := PigeonholeCNF(10)
	s := NewSolver()
	if err := f.LoadInto(s); err != nil {
		t.Fatal(err)
	}
	polls := 0
	s.SetCancel(func() bool {
		polls++
		return polls > 3
	})
	if got := s.Solve(); got != StatusUnknown {
		t.Fatalf("cancelled solve = %v, want UNKNOWN", got)
	}
	if polls < 4 {
		t.Fatalf("cancel check polled %d times, want >= 4", polls)
	}
}

func TestCancelledSolverStaysUsable(t *testing.T) {
	f := PigeonholeCNF(6)
	s := NewSolver()
	if err := f.LoadInto(s); err != nil {
		t.Fatal(err)
	}
	fired := false
	s.SetCancel(func() bool { fired = true; return true })
	if got := s.Solve(); got != StatusUnknown {
		t.Fatalf("cancelled solve = %v, want UNKNOWN", got)
	}
	if !fired {
		t.Fatal("cancel check never polled")
	}
	// Remove the check: the same solver finishes the proof, keeping the
	// clauses it learnt before the cancel.
	s.SetCancel(nil)
	if got := s.Solve(); got != StatusUnsat {
		t.Fatalf("resumed solve = %v, want UNSAT", got)
	}
}

func TestNilCancelNeverTriggers(t *testing.T) {
	f := PigeonholeCNF(5)
	s := NewSolver()
	if err := f.LoadInto(s); err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != StatusUnsat {
		t.Fatalf("solve = %v, want UNSAT", got)
	}
}

// Property: every diversification option combination agrees with the
// brute-force oracle, and SAT models check out.
func TestDiversifiedOptionsAgreeWithBrute(t *testing.T) {
	variants := []Options{
		{InvertPhase: true},
		{RestartBase: 16},
		{RestartBase: 512},
		{RandSeed: 7, RandomPolarityFreq: 0.2},
		{RandSeed: 99, RandomPolarityFreq: 0.5, InvertPhase: true},
		{DisablePhaseSaving: true, RestartBase: 32},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars := 5 + rng.Intn(8)
		cnf := randomCNF(vars, vars*4, 3, seed)
		want, _ := SolveBrute(cnf)
		for _, opts := range variants {
			s := NewSolverWithOptions(opts)
			if err := cnf.LoadInto(s); err != nil {
				return false
			}
			got := s.Solve()
			if got != want {
				return false
			}
			if got == StatusSat && !cnf.Eval(s.Model()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Same Options must reproduce the same search: the random stream is
// seeded, never wall-clock dependent.
func TestRandomPolarityDeterministic(t *testing.T) {
	cnf := randomCNF(12, 48, 3, 42)
	opts := Options{RandSeed: 5, RandomPolarityFreq: 0.3}
	run := func() (Status, Stats) {
		s := NewSolverWithOptions(opts)
		if err := cnf.LoadInto(s); err != nil {
			t.Fatal(err)
		}
		return s.Solve(), s.Stats()
	}
	st1, stats1 := run()
	st2, stats2 := run()
	if st1 != st2 || stats1 != stats2 {
		t.Fatalf("same options diverged: %v/%+v vs %v/%+v", st1, stats1, st2, stats2)
	}
}

// Property: ExportCNF round-trips — a fresh solver loaded from the
// export answers like the original, and original models satisfy the
// exported formula (the export only strengthens by root facts).
func TestExportCNFEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x51ed))
		vars := 4 + rng.Intn(8)
		cnf := &CNF{NumVars: vars}
		for i := 0; i < vars*3; i++ {
			k := 1 + rng.Intn(3)
			seen := map[int]bool{}
			var c []Lit
			for len(c) < k {
				v := rng.Intn(vars)
				if seen[v] {
					continue
				}
				seen[v] = true
				c = append(c, MkLit(Var(v), rng.Intn(2) == 0))
			}
			cnf.AddClause(c...)
		}
		want, _ := SolveBrute(cnf)

		orig := NewSolver()
		if err := cnf.LoadInto(orig); err != nil {
			return false
		}
		exported := orig.ExportCNF()
		if exported.NumVars < cnf.NumVars {
			return false
		}
		reload := NewSolver()
		if err := exported.LoadInto(reload); err != nil {
			return false
		}
		got := reload.Solve()
		if got != want {
			return false
		}
		return got != StatusSat || cnf.Eval(reload.Model())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestExportCNFUnsatRoot(t *testing.T) {
	s := NewSolver()
	v := s.NewVar()
	mustAdd(t, s, PosLit(v))
	mustAdd(t, s, NegLit(v))
	f := s.ExportCNF()
	reload := NewSolver()
	if err := f.LoadInto(reload); err != nil {
		t.Fatal(err)
	}
	if got := reload.Solve(); got != StatusUnsat {
		t.Fatalf("reloaded root-unsat export = %v, want UNSAT", got)
	}
}
