package sat

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, s *Solver, lits ...Lit) {
	t.Helper()
	if err := s.AddClause(lits...); err != nil {
		t.Fatalf("AddClause(%v): %v", lits, err)
	}
}

func TestEmptyFormulaSat(t *testing.T) {
	s := NewSolver()
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("empty formula: %v", got)
	}
}

func TestSingleUnit(t *testing.T) {
	s := NewSolver()
	v := s.NewVar()
	mustAdd(t, s, PosLit(v))
	if s.Solve() != StatusSat {
		t.Fatal("unit clause unsat?")
	}
	if s.Value(v) != True {
		t.Fatalf("value = %v, want true", s.Value(v))
	}
}

func TestContradictionUnsat(t *testing.T) {
	s := NewSolver()
	v := s.NewVar()
	mustAdd(t, s, PosLit(v))
	mustAdd(t, s, NegLit(v))
	if s.Solve() != StatusUnsat {
		t.Fatal("x ∧ ¬x should be unsat")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := NewSolver()
	s.NewVar()
	mustAdd(t, s) // empty clause
	if s.Solve() != StatusUnsat {
		t.Fatal("empty clause should make the formula unsat")
	}
	if err := s.AddClause(); !errors.Is(err, ErrAddAfterUnsat) {
		t.Fatalf("err = %v, want ErrAddAfterUnsat", err)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := NewSolver()
	v := s.NewVar()
	mustAdd(t, s, PosLit(v), NegLit(v))
	if s.NumClauses() != 0 {
		t.Fatal("tautology should not be stored")
	}
	if s.Solve() != StatusSat {
		t.Fatal("tautology-only formula should be sat")
	}
}

func TestDuplicateLiteralsMerged(t *testing.T) {
	s := NewSolver()
	v := s.NewVar()
	w := s.NewVar()
	mustAdd(t, s, PosLit(v), PosLit(v), PosLit(w))
	if s.Solve() != StatusSat {
		t.Fatal("sat expected")
	}
}

func TestImplicationChain(t *testing.T) {
	// x0 ∧ (x0→x1) ∧ (x1→x2) ... forces all true.
	s := NewSolver()
	const n = 20
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	mustAdd(t, s, PosLit(vs[0]))
	for i := 0; i+1 < n; i++ {
		mustAdd(t, s, NegLit(vs[i]), PosLit(vs[i+1]))
	}
	if s.Solve() != StatusSat {
		t.Fatal("chain should be sat")
	}
	for i, v := range vs {
		if s.Value(v) != True {
			t.Fatalf("x%d = %v, want true", i, s.Value(v))
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n) is a classic unsat family that requires real conflict
	// analysis to finish quickly.
	for _, n := range []int{3, 4, 5} {
		s := NewSolver()
		// p[i][j]: pigeon i in hole j.
		p := make([][]Var, n+1)
		for i := range p {
			p[i] = make([]Var, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			lits := make([]Lit, n)
			for j := 0; j < n; j++ {
				lits[j] = PosLit(p[i][j])
			}
			mustAdd(t, s, lits...)
		}
		for j := 0; j < n; j++ {
			for i := 0; i <= n; i++ {
				for k := i + 1; k <= n; k++ {
					mustAdd(t, s, NegLit(p[i][j]), NegLit(p[k][j]))
				}
			}
		}
		if got := s.Solve(); got != StatusUnsat {
			t.Fatalf("PHP(%d,%d) = %v, want UNSAT", n+1, n, got)
		}
	}
}

func TestGraphColoringSat(t *testing.T) {
	// A 5-cycle is 3-colorable but not 2-colorable.
	solveCycleColoring := func(colors int) Status {
		s := NewSolver()
		const n = 5
		x := make([][]Var, n)
		for i := range x {
			x[i] = make([]Var, colors)
			for c := range x[i] {
				x[i][c] = s.NewVar()
			}
		}
		for i := 0; i < n; i++ {
			lits := make([]Lit, colors)
			for c := 0; c < colors; c++ {
				lits[c] = PosLit(x[i][c])
			}
			mustAdd(t, s, lits...)
		}
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			for c := 0; c < colors; c++ {
				mustAdd(t, s, NegLit(x[i][c]), NegLit(x[j][c]))
			}
		}
		return s.Solve()
	}
	if solveCycleColoring(3) != StatusSat {
		t.Error("C5 should be 3-colorable")
	}
	if solveCycleColoring(2) != StatusUnsat {
		t.Error("C5 should not be 2-colorable")
	}
}

func TestModelSatisfiesFormula(t *testing.T) {
	f := randomCNF(30, 120, 3, 99)
	s := NewSolver()
	if err := f.LoadInto(s); err != nil {
		t.Fatal(err)
	}
	if s.Solve() == StatusSat {
		if !f.Eval(s.Model()) {
			t.Fatal("returned model does not satisfy the formula")
		}
	}
}

func TestIncrementalEnumeration(t *testing.T) {
	// Enumerate all 4 models of (x ∨ y): block each model and re-solve.
	s := NewSolver()
	x := s.NewVar()
	y := s.NewVar()
	mustAdd(t, s, PosLit(x), PosLit(y))
	count := 0
	for s.Solve() == StatusSat {
		count++
		if count > 10 {
			t.Fatal("enumeration runaway")
		}
		m := s.Model()
		block := make([]Lit, 2)
		for i, v := range []Var{x, y} {
			block[i] = MkLit(v, m[v]) // negate the model
		}
		mustAdd(t, s, block...)
	}
	if count != 3 {
		t.Fatalf("enumerated %d models of (x ∨ y), want 3", count)
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	s := NewSolverWithOptions(Options{MaxConflicts: 1})
	// PHP(5,4) needs more than one conflict.
	n := 4
	p := make([][]Var, n+1)
	for i := range p {
		p[i] = make([]Var, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = PosLit(p[i][j])
		}
		mustAdd(t, s, lits...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				mustAdd(t, s, NegLit(p[i][j]), NegLit(p[k][j]))
			}
		}
	}
	if got := s.Solve(); got != StatusUnknown {
		t.Fatalf("budgeted solve = %v, want UNKNOWN", got)
	}
}

func TestOptionsVariants(t *testing.T) {
	// All heuristic variants must stay sound.
	variants := []Options{
		{},
		{DisableVSIDS: true},
		{DisableRestarts: true},
		{DisablePhaseSaving: true},
		{DisableVSIDS: true, DisableRestarts: true, DisablePhaseSaving: true},
	}
	f := randomCNF(20, 85, 3, 5)
	want, _ := SolveBrute(f)
	for i, opt := range variants {
		s := NewSolverWithOptions(opt)
		if err := f.LoadInto(s); err != nil {
			t.Fatal(err)
		}
		if got := s.Solve(); got != want {
			t.Errorf("variant %d: got %v, want %v", i, got, want)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	f := randomCNF(25, 106, 3, 7)
	s := NewSolver()
	if err := f.LoadInto(s); err != nil {
		t.Fatal(err)
	}
	s.Solve()
	st := s.Stats()
	if st.Decisions == 0 && st.Propagations == 0 {
		t.Error("stats never incremented")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

// randomCNF builds a random k-CNF with the given clause count.
func randomCNF(vars, clauses, k int, seed int64) *CNF {
	rng := rand.New(rand.NewSource(seed))
	f := &CNF{NumVars: vars}
	for i := 0; i < clauses; i++ {
		seen := map[int]bool{}
		var c []Lit
		for len(c) < k {
			v := rng.Intn(vars)
			if seen[v] {
				continue
			}
			seen[v] = true
			c = append(c, MkLit(Var(v), rng.Intn(2) == 0))
		}
		f.AddClause(c...)
	}
	return f
}

// Property: CDCL and DPLL agree on satisfiability of random small CNFs,
// and any SAT model actually satisfies the formula.
func TestCDCLAgreesWithDPLLProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars := 5 + rng.Intn(9)
		clauses := vars * (3 + rng.Intn(3))
		cnf := randomCNF(vars, clauses, 3, seed)
		bruteStatus, _ := SolveBrute(cnf)
		s := NewSolver()
		if err := cnf.LoadInto(s); err != nil {
			return false
		}
		got := s.Solve()
		if got != bruteStatus {
			return false
		}
		if got == StatusSat && !cnf.Eval(s.Model()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: mixed clause sizes (1..4) behave identically too — exercises
// unit handling and binary-clause watches.
func TestMixedClauseSizesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
		vars := 4 + rng.Intn(8)
		cnf := &CNF{NumVars: vars}
		nc := vars * 3
		for i := 0; i < nc; i++ {
			k := 1 + rng.Intn(4)
			var c []Lit
			seen := map[int]bool{}
			for len(c) < k {
				v := rng.Intn(vars)
				if seen[v] {
					continue
				}
				seen[v] = true
				c = append(c, MkLit(Var(v), rng.Intn(2) == 0))
			}
			cnf.AddClause(c...)
		}
		bruteStatus, _ := SolveBrute(cnf)
		s := NewSolver()
		if err := cnf.LoadInto(s); err != nil {
			return false
		}
		got := s.Solve()
		if got != bruteStatus {
			return false
		}
		return got != StatusSat || cnf.Eval(s.Model())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestLitHelpers(t *testing.T) {
	v := Var(5)
	p := PosLit(v)
	n := NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Fatal("Var roundtrip")
	}
	if p.Neg() || !n.Neg() {
		t.Fatal("Neg flags")
	}
	if p.Not() != n || n.Not() != p {
		t.Fatal("Not involution")
	}
	if p.String() != "6" || n.String() != "-6" {
		t.Fatalf("String: %s %s", p, n)
	}
	if LitUndef.String() != "?" {
		t.Fatal("LitUndef string")
	}
}

func TestLBool(t *testing.T) {
	if True.Not() != False || False.Not() != True || Undef.Not() != Undef {
		t.Fatal("LBool.Not")
	}
	if True.String() != "true" || False.String() != "false" || Undef.String() != "undef" {
		t.Fatal("LBool.String")
	}
}

func TestStatusString(t *testing.T) {
	if StatusSat.String() != "SAT" || StatusUnsat.String() != "UNSAT" || StatusUnknown.String() != "UNKNOWN" {
		t.Fatal("Status.String")
	}
}

func TestSolveAssumingBasic(t *testing.T) {
	s := NewSolver()
	x := s.NewVar()
	y := s.NewVar()
	mustAdd(t, s, PosLit(x), PosLit(y)) // x ∨ y
	if s.SolveAssuming(NegLit(x)) != StatusSat {
		t.Fatal("assuming ¬x should be sat (y true)")
	}
	if s.Value(y) != True {
		t.Fatal("y must be true under ¬x")
	}
	if s.SolveAssuming(NegLit(x), NegLit(y)) != StatusUnsat {
		t.Fatal("assuming ¬x ∧ ¬y should be unsat")
	}
	// The solver stays reusable: without assumptions it is still sat.
	if s.Solve() != StatusSat {
		t.Fatal("solver not reusable after assumption UNSAT")
	}
}

func TestSolveAssumingConflictingAssumptions(t *testing.T) {
	s := NewSolver()
	x := s.NewVar()
	if s.SolveAssuming(PosLit(x), NegLit(x)) != StatusUnsat {
		t.Fatal("contradictory assumptions should be unsat")
	}
	if s.Solve() != StatusSat {
		t.Fatal("solver must remain usable")
	}
}

func TestSolveAssumingAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x51ab))
		vars := 5 + rng.Intn(6)
		cnf := randomCNF(vars, vars*3, 3, seed)
		s := NewSolver()
		if err := cnf.LoadInto(s); err != nil {
			return false
		}
		// Random assumptions over two variables.
		a1 := MkLit(Var(rng.Intn(vars)), rng.Intn(2) == 0)
		a2 := MkLit(Var(rng.Intn(vars)), rng.Intn(2) == 0)
		got := s.SolveAssuming(a1, a2)
		// Brute force: conjoin the assumptions as unit clauses.
		ref := &CNF{NumVars: cnf.NumVars}
		for _, c := range cnf.Clauses {
			ref.AddClause(c...)
		}
		ref.AddClause(a1)
		ref.AddClause(a2)
		want, _ := SolveBrute(ref)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveAssumingRepeatedIncremental(t *testing.T) {
	// Incremental probing: solve the same instance under each single
	// assumption; results must match one-shot solvers.
	cnf := randomCNF(12, 40, 3, 77)
	inc := NewSolver()
	if err := cnf.LoadInto(inc); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < cnf.NumVars; v++ {
		for _, neg := range []bool{false, true} {
			a := MkLit(Var(v), neg)
			got := inc.SolveAssuming(a)
			ref := &CNF{NumVars: cnf.NumVars}
			for _, c := range cnf.Clauses {
				ref.AddClause(c...)
			}
			ref.AddClause(a)
			want, _ := SolveBrute(ref)
			if got != want {
				t.Fatalf("assumption %v: got %v want %v", a, got, want)
			}
		}
	}
}
