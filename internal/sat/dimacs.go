package sat

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CNF is a formula in conjunctive normal form, independent of any solver
// instance. Variables are 0-based; the DIMACS reader/writer shifts by one.
type CNF struct {
	NumVars int
	Clauses [][]Lit
}

// AddClause appends a clause, growing NumVars as needed.
func (f *CNF) AddClause(lits ...Lit) {
	c := append([]Lit(nil), lits...)
	for _, l := range c {
		if int(l.Var()) >= f.NumVars {
			f.NumVars = int(l.Var()) + 1
		}
	}
	f.Clauses = append(f.Clauses, c)
}

// NumClauses returns the number of clauses.
func (f *CNF) NumClauses() int { return len(f.Clauses) }

// LoadInto creates the formula's variables and clauses in a solver. If
// the formula becomes unsatisfiable at the root level partway through,
// loading stops early and returns nil: the solver will answer UNSAT.
func (f *CNF) LoadInto(s *Solver) error {
	for s.NumVars() < f.NumVars {
		s.NewVar()
	}
	for _, c := range f.Clauses {
		if err := s.AddClause(c...); err != nil {
			if errors.Is(err, ErrAddAfterUnsat) {
				return nil
			}
			return err
		}
	}
	return nil
}

// Eval reports whether the assignment (indexed by variable) satisfies
// every clause.
func (f *CNF) Eval(model []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			v := int(l.Var())
			if v < len(model) && model[v] != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// ParseDIMACS reads a CNF in DIMACS format. Comment lines (c ...) and the
// problem line (p cnf V C) are handled; clause terminator is 0.
func ParseDIMACS(r io.Reader) (*CNF, error) {
	f := &CNF{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var cur []Lit
	declaredVars := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: malformed problem line %q", line)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("sat: bad var count in %q: %w", line, err)
			}
			declaredVars = v
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q: %w", tok, err)
			}
			if n == 0 {
				f.AddClause(cur...)
				cur = cur[:0]
				continue
			}
			v := n
			if v < 0 {
				v = -v
			}
			cur = append(cur, MkLit(Var(v-1), n < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sat: reading DIMACS: %w", err)
	}
	if len(cur) > 0 {
		return nil, fmt.Errorf("sat: unterminated clause %v", cur)
	}
	if declaredVars > f.NumVars {
		f.NumVars = declaredVars
	}
	return f, nil
}

// WriteDIMACS emits the formula in DIMACS format.
func (f *CNF) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(bw, "%s ", l); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
