package sat

import (
	"errors"
	"sort"
)

// ErrAddAfterUnsat is returned by AddClause once the formula is known
// unsatisfiable at the root level.
var ErrAddAfterUnsat = errors.New("sat: clause added to a solver already proven unsat")

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

type watcher struct {
	c       *clause
	blocker Lit // a literal whose truth satisfies the clause cheaply
}

// Options tunes solver behaviour. The zero value selects production
// defaults (VSIDS on, restarts on, clause deletion on). The fields
// beyond the ablation switches exist to diversify the members of a
// solver portfolio (internal/portfolio): each racing solver gets a
// different polarity default, restart cadence, and random perturbation
// seed so they explore different parts of the search space.
type Options struct {
	// DisableVSIDS branches on the lowest-indexed unassigned variable
	// instead of activity order. Used by the heuristic ablation bench.
	DisableVSIDS bool
	// DisableRestarts turns off Luby restarts.
	DisableRestarts bool
	// DisablePhaseSaving always decides the negative polarity first.
	DisablePhaseSaving bool
	// MaxConflicts aborts the search with StatusUnknown after this many
	// conflicts (0 = unlimited).
	MaxConflicts int64
	// InvertPhase starts every variable with the positive polarity
	// instead of the negative one (phase saving still updates it).
	InvertPhase bool
	// RestartBase scales the Luby restart sequence (conflicts before the
	// first restart). 0 means the default of 100.
	RestartBase int64
	// RandSeed seeds the solver's deterministic pseudo-random stream
	// (used only when RandomPolarityFreq > 0). 0 selects a fixed seed,
	// so equal Options always reproduce the same search.
	RandSeed uint64
	// RandomPolarityFreq is the probability (0..1) that a decision uses
	// a random polarity instead of the saved phase.
	RandomPolarityFreq float64
}

// Solver is a CDCL SAT solver. Create with NewSolver, add variables with
// NewVar and clauses with AddClause, then call Solve. After a SAT answer,
// Value reads the model; more clauses may then be added (e.g. blocking
// clauses for model enumeration) and Solve called again.
type Solver struct {
	opts Options

	clauses []*clause // problem clauses
	learnts []*clause

	watches [][]watcher // indexed by Lit: clauses watching l.Not() ... see attach

	assigns  []LBool // indexed by Var
	level    []int
	reason   []*clause
	activity []float64
	phase    []bool // saved polarity: true = last assigned true

	trail    []Lit
	trailLim []int
	qhead    int

	order  *varHeap
	varInc float64

	claInc float64

	ok    bool // false once UNSAT at root level
	stats Stats

	rng uint64 // xorshift state for RandomPolarityFreq

	// cancelled is polled periodically inside search; when it reports
	// true the solve returns StatusUnknown. Set via SetCancel.
	cancelled func() bool

	// scratch buffers for analyze
	seen      []bool
	analyzeCl []Lit
	clearList []Lit
}

// NewSolver returns a solver with default options.
func NewSolver() *Solver { return NewSolverWithOptions(Options{}) }

// NewSolverWithOptions returns a solver with the given tuning options.
func NewSolverWithOptions(opts Options) *Solver {
	s := &Solver{opts: opts, varInc: 1, claInc: 1, ok: true}
	s.rng = opts.RandSeed
	if s.rng == 0 {
		s.rng = 0x9e3779b97f4a7c15
	}
	s.order = newVarHeap(&s.activity)
	return s
}

// SetCancel installs a cooperative cancellation check. The search loop
// polls it periodically (every few dozen conflicts/decisions); when it
// reports true, Solve returns StatusUnknown. The solver stays usable —
// a later Solve resumes with the learnt clauses intact. Passing nil
// removes the check. Used by the portfolio engine to stop losers once
// one racer has answered.
func (s *Solver) SetCancel(cancelled func() bool) { s.cancelled = cancelled }

// nextRand advances the solver's xorshift64 stream.
func (s *Solver) nextRand() uint64 {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return s.rng
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the current number of learnt clauses.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// Stats returns a copy of the solver counters.
func (s *Solver) Stats() Stats { return s.stats }

// NewVar allocates a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, Undef)
	s.level = append(s.level, -1)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, s.opts.InvertPhase)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v)
	return v
}

// NewVars allocates n fresh variables and returns the first one.
func (s *Solver) NewVars(n int) Var {
	first := Var(len(s.assigns))
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	return first
}

func (s *Solver) valueLit(l Lit) LBool {
	b := s.assigns[l.Var()]
	if l.Neg() {
		return b.Not()
	}
	return b
}

// Value returns the model value of v after a SAT answer (Undef if the
// variable was never assigned, which can happen for variables not
// occurring in any clause).
func (s *Solver) Value(v Var) LBool { return s.assigns[v] }

// ValueLit returns the model value of a literal after a SAT answer.
func (s *Solver) ValueLit(l Lit) LBool { return s.valueLit(l) }

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals. It returns
// ErrAddAfterUnsat if the solver is already in an unsatisfiable state,
// and silently strengthens/discards tautological or falsified input:
// duplicate literals are merged, true clauses dropped, false literals
// removed (at root level). Adding the empty clause makes the formula
// unsat. Calling AddClause after a SAT answer resets the search state and
// invalidates the model, so read Model first when enumerating.
func (s *Solver) AddClause(lits ...Lit) error {
	if !s.ok {
		return ErrAddAfterUnsat
	}
	if s.decisionLevel() != 0 {
		s.backtrack(0)
	}
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = LitUndef
	for _, l := range ls {
		if l.Var() < 0 || int(l.Var()) >= s.NumVars() {
			panic("sat: literal over undeclared variable")
		}
		if l == prev {
			continue // duplicate
		}
		if prev != LitUndef && l == prev.Not() {
			return nil // tautology p ∨ ¬p
		}
		switch s.valueLit(l) {
		case True:
			return nil // already satisfied at root
		case False:
			continue // falsified at root: drop literal
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return nil
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
		}
		return nil
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return nil
}

// attach registers the first two literals of c as watched.
func (s *Solver) attach(c *clause) {
	// watches[l] holds clauses that must be inspected when l becomes
	// true-negated, i.e. when the watched literal l.Not() is falsified.
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{c: c, blocker: l1})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{c: c, blocker: l0})
}

func (s *Solver) detach(c *clause) {
	for _, l := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[l]
		for i := range ws {
			if ws[i].c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[l] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = False
	} else {
		s.assigns[v] = True
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.phase[v] = !l.Neg()
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting clause
// or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; clauses watching p must move
		s.qhead++
		s.stats.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if conflict != nil {
				kept = append(kept, w)
				continue
			}
			if s.valueLit(w.blocker) == True {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Normalize so lits[1] is the falsified watcher (== p.Not()).
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == True {
				kept = append(kept, watcher{c: c, blocker: first})
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != False {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nl := c.lits[1].Not()
					s.watches[nl] = append(s.watches[nl], watcher{c: c, blocker: first})
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c: c, blocker: first})
			if s.valueLit(first) == False {
				conflict = c
				s.qhead = len(s.trail)
			} else {
				s.uncheckedEnqueue(first, c)
			}
		}
		s.watches[p] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayVar() { s.varInc /= 0.95 }

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClause() { s.claInc /= 0.999 }

// analyze performs first-UIP conflict analysis. It fills s.analyzeCl with
// the learnt clause (asserting literal first) and returns the backtrack
// level.
func (s *Solver) analyze(conflict *clause) int {
	s.analyzeCl = s.analyzeCl[:0]
	s.analyzeCl = append(s.analyzeCl, LitUndef) // room for the asserting literal
	counter := 0
	var p Lit = LitUndef
	idx := len(s.trail) - 1
	c := conflict
	for {
		if c.learnt {
			s.bumpClause(c)
		}
		start := 0
		if p != LitUndef {
			start = 1 // lits[0] is p itself when following a reason
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				s.analyzeCl = append(s.analyzeCl, q)
			}
		}
		// Select next literal on the trail to expand.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[p.Var()]
	}
	s.analyzeCl[0] = p.Not()

	// Mark remaining seen for minimization; remember every mark so all of
	// them — including literals dropped by minimization — are cleared at
	// the end.
	for _, l := range s.analyzeCl[1:] {
		s.seen[l.Var()] = true
		s.clearList = append(s.clearList, l)
	}
	// Recursive clause minimization: drop literals implied by the rest.
	j := 1
	for i := 1; i < len(s.analyzeCl); i++ {
		l := s.analyzeCl[i]
		if s.reason[l.Var()] == nil || !s.litRedundant(l, 0) {
			s.analyzeCl[j] = l
			j++
		}
	}
	s.analyzeCl = s.analyzeCl[:j]

	// Compute backtrack level = max level among lits[1:].
	btLevel := 0
	if len(s.analyzeCl) > 1 {
		maxI := 1
		for i := 2; i < len(s.analyzeCl); i++ {
			if s.level[s.analyzeCl[i].Var()] > s.level[s.analyzeCl[maxI].Var()] {
				maxI = i
			}
		}
		s.analyzeCl[1], s.analyzeCl[maxI] = s.analyzeCl[maxI], s.analyzeCl[1]
		btLevel = s.level[s.analyzeCl[1].Var()]
	}
	// Clear seen marks (including any set during litRedundant).
	for _, l := range s.analyzeCl {
		s.seen[l.Var()] = false
	}
	for _, l := range s.clearList {
		s.seen[l.Var()] = false
	}
	s.clearList = s.clearList[:0]
	return btLevel
}

// litRedundant reports whether literal l is implied by the other literals
// of the learnt clause (limited-depth recursive minimization).
func (s *Solver) litRedundant(l Lit, depth int) bool {
	if depth > 16 {
		return false
	}
	c := s.reason[l.Var()]
	if c == nil {
		return false
	}
	for _, q := range c.lits {
		if q.Var() == l.Var() {
			continue
		}
		v := q.Var()
		if s.level[v] == 0 || s.seen[v] {
			continue
		}
		if s.reason[v] == nil {
			return false
		}
		if !s.litRedundant(q, depth+1) {
			return false
		}
		// q proved redundant: mark so siblings can reuse the result.
		s.seen[v] = true
		s.clearList = append(s.clearList, q)
	}
	return true
}

// backtrack undoes assignments above the given level.
func (s *Solver) backtrack(toLevel int) {
	if s.decisionLevel() <= toLevel {
		return
	}
	bound := s.trailLim[toLevel]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assigns[v] = Undef
		s.reason[v] = nil
		s.level[v] = -1
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:toLevel]
	s.qhead = len(s.trail)
}

// pickBranchVar selects the next decision variable, or -1 if all assigned.
func (s *Solver) pickBranchVar() Var {
	if s.opts.DisableVSIDS {
		for v := 0; v < s.NumVars(); v++ {
			if s.assigns[v] == Undef {
				return Var(v)
			}
		}
		return -1
	}
	for !s.order.empty() {
		v := s.order.removeMax()
		if s.assigns[v] == Undef {
			return v
		}
	}
	return -1
}

// reduceDB removes the less active half of the learnt clauses (never
// clauses that are the reason of a current assignment, never binaries).
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		return s.learnts[i].activity > s.learnts[j].activity
	})
	locked := make(map[*clause]bool)
	for _, r := range s.reason {
		if r != nil {
			locked[r] = true
		}
	}
	keep := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if i < limit || len(c.lits) == 2 || locked[c] {
			keep = append(keep, c)
		} else {
			s.detach(c)
			s.stats.Deleted++
		}
	}
	s.learnts = keep
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int64) int64 {
	x := i - 1
	// Find the finite subsequence containing x and its size.
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << uint(seq)
}

// Solve runs the CDCL search and returns StatusSat, StatusUnsat, or
// StatusUnknown when Options.MaxConflicts is exceeded.
func (s *Solver) Solve() Status { return s.SolveAssuming() }

// SolveAssuming solves under the given assumption literals: they are
// decided first and never flipped, so an UNSAT answer means "unsat
// under these assumptions" while the clause database stays reusable —
// the standard incremental-SAT interface.
func (s *Solver) SolveAssuming(assumptions ...Lit) Status {
	if !s.ok {
		return StatusUnsat
	}
	s.backtrack(0)
	if conflict := s.propagate(); conflict != nil {
		s.ok = false
		return StatusUnsat
	}
	for _, a := range assumptions {
		switch s.valueLit(a) {
		case True:
			continue
		case False:
			s.backtrack(0)
			return StatusUnsat
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(a, nil)
		if s.propagate() != nil {
			s.backtrack(0)
			return StatusUnsat
		}
	}
	// The floor is the decision level actually created: duplicate or
	// already-satisfied assumptions open no level of their own.
	return s.search(s.decisionLevel())
}

// search runs the CDCL loop, never backtracking past floorLevel (the
// assumption levels).
func (s *Solver) search(floorLevel int) Status {
	restartBase := s.opts.RestartBase
	if restartBase <= 0 {
		restartBase = 100
	}
	restart := int64(1)
	budget := restartBase * luby(restart)
	conflictsAtRestart := int64(0)
	maxLearnts := int64(len(s.clauses)/3 + 100)
	sinceCancelPoll := 0
	for {
		// Cooperative cancellation: every iteration ends in a conflict or
		// a decision, so polling on a shared counter here bounds the
		// latency of a portfolio cancel without a check in the hot
		// propagation loop.
		sinceCancelPoll++
		if sinceCancelPoll >= 64 {
			sinceCancelPoll = 0
			if s.cancelled != nil && s.cancelled() {
				s.backtrack(0)
				return StatusUnknown
			}
		}
		conflict := s.propagate()
		if conflict != nil {
			s.stats.Conflicts++
			conflictsAtRestart++
			if s.decisionLevel() <= floorLevel {
				if floorLevel == 0 {
					s.ok = false
				} else {
					s.backtrack(0)
				}
				return StatusUnsat
			}
			btLevel := s.analyze(conflict)
			learnt := append([]Lit(nil), s.analyzeCl...)
			if btLevel < floorLevel {
				btLevel = floorLevel
			}
			s.backtrack(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, activity: s.claInc}
				s.learnts = append(s.learnts, c)
				s.stats.Learnt++
				s.attach(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayVar()
			s.decayClause()
			if s.opts.MaxConflicts > 0 && s.stats.Conflicts >= s.opts.MaxConflicts {
				s.backtrack(0)
				return StatusUnknown
			}
			continue
		}
		if !s.opts.DisableRestarts && conflictsAtRestart >= budget {
			s.stats.Restarts++
			restart++
			budget = restartBase * luby(restart)
			conflictsAtRestart = 0
			s.backtrack(floorLevel)
			continue
		}
		if int64(len(s.learnts)) >= maxLearnts+int64(len(s.trail)) {
			s.reduceDB()
			maxLearnts += maxLearnts / 10
		}
		v := s.pickBranchVar()
		if v < 0 {
			return StatusSat // all variables assigned, no conflict
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		neg := !s.phase[v]
		if s.opts.DisablePhaseSaving {
			neg = true
		}
		if s.opts.RandomPolarityFreq > 0 {
			r := s.nextRand()
			if float64(r%1000)/1000 < s.opts.RandomPolarityFreq {
				neg = r&(1<<32) != 0
			}
		}
		s.uncheckedEnqueue(MkLit(v, neg), nil)
	}
}

// Model returns the satisfying assignment as a []bool indexed by
// variable. Unconstrained variables default to false. Only meaningful
// after Solve returned StatusSat.
func (s *Solver) Model() []bool {
	m := make([]bool, s.NumVars())
	for v := range m {
		m[v] = s.assigns[v] == True
	}
	return m
}

// ResetSearch backtracks to level 0 so more clauses can be added after a
// SAT answer (model enumeration).
func (s *Solver) ResetSearch() { s.backtrack(0) }

// ExportCNF snapshots the solver's problem (non-learnt) clauses and
// root-level units as a standalone CNF over the same variable indexing.
// The export is equivalent to the clauses originally added: AddClause's
// root-level simplifications (dropped satisfied clauses, removed false
// literals) are all justified by the exported unit clauses. This is the
// bridge from the relational translator — which emits clauses straight
// into one solver — to the portfolio engine, which must load the same
// formula into many solvers.
func (s *Solver) ExportCNF() *CNF {
	f := &CNF{NumVars: s.NumVars()}
	if !s.ok {
		f.AddClause() // empty clause: known unsat at root
		return f
	}
	for v := 0; v < s.NumVars(); v++ {
		if s.level[v] == 0 && s.assigns[v] != Undef && s.reason[v] == nil {
			f.AddClause(MkLit(Var(v), s.assigns[v] == False))
		}
	}
	for _, c := range s.clauses {
		f.AddClause(c.lits...)
	}
	return f
}
