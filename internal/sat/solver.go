package sat

import (
	"errors"
	"sort"
)

// ErrAddAfterUnsat is returned by AddClause once the formula is known
// unsatisfiable at the root level.
var ErrAddAfterUnsat = errors.New("sat: clause added to a solver already proven unsat")

// watcher is one entry of a long-clause watch list: the clause reference
// plus a blocker literal whose truth satisfies the clause without
// touching the arena. Eight bytes per entry keeps watch-list walks
// inside a few cache lines.
type watcher struct {
	cr      cref
	blocker Lit
}

// reasonT is the implication reason of an assigned variable, packed into
// one word. Values:
//
//	reasonNone          decision, assumption, or root-level fact
//	reasonBin | lit     binary clause: the other literal is inlined
//	cref                long clause in the arena (top bit clear)
//
// The arena guards crefs below 2^31 so the tag bit is always free.
// reasonNone has the tag bit set too, so test it first.
type reasonT uint32

const (
	reasonNone reasonT = ^reasonT(0)
	reasonBin  reasonT = 1 << 31
)

// lbdSat is the saturation point of the LBD deletion ordering: clauses
// whose literals span more than this many decision levels compare equal
// on glue and fall through to the activity tiebreak.
const lbdSat = 6

// Options tunes solver behaviour. The zero value selects production
// defaults (VSIDS on, restarts on, LBD-tiered clause deletion on). The
// fields beyond the ablation switches exist to diversify the members of
// a solver portfolio (internal/portfolio): each racing solver gets a
// different polarity default, restart cadence, and random perturbation
// seed so they explore different parts of the search space.
type Options struct {
	// DisableVSIDS branches on the lowest-indexed unassigned variable
	// instead of activity order. Used by the heuristic ablation bench.
	DisableVSIDS bool
	// DisableRestarts turns off Luby restarts.
	DisableRestarts bool
	// DisablePhaseSaving always decides the negative polarity first.
	DisablePhaseSaving bool
	// DisableLBD falls back to pure activity ordering when halving the
	// learnt database, the pre-arena policy. The default keeps a core
	// tier of low-LBD ("glue") clauses forever and deletes worst-glue
	// first. Used by the heuristic ablation bench.
	DisableLBD bool
	// MaxConflicts aborts the search with StatusUnknown after this many
	// conflicts (0 = unlimited).
	MaxConflicts int64
	// InvertPhase starts every variable with the positive polarity
	// instead of the negative one (phase saving still updates it).
	InvertPhase bool
	// RestartBase scales the Luby restart sequence (conflicts before the
	// first restart). 0 means the default of 100.
	RestartBase int64
	// CoreLBD is the glue threshold: learnt clauses with LBD at or below
	// it are never deleted. 0 means the default of 3.
	CoreLBD int
	// GCFrac is the fraction of the clause arena that may be wasted by
	// deleted clauses before a compacting GC runs. 0 means the default
	// of 0.25; values >= 1 effectively disable compaction.
	GCFrac float64
	// RandSeed seeds the solver's deterministic pseudo-random stream
	// (used only when RandomPolarityFreq > 0). 0 selects a fixed seed,
	// so equal Options always reproduce the same search.
	RandSeed uint64
	// RandomPolarityFreq is the probability (0..1) that a decision uses
	// a random polarity instead of the saved phase.
	RandomPolarityFreq float64
}

// Solver is a CDCL SAT solver. Create with NewSolver, add variables with
// NewVar and clauses with AddClause, then call Solve. After a SAT answer,
// Value reads the model; more clauses may then be added (e.g. blocking
// clauses for model enumeration) and Solve called again.
//
// Storage: clauses of three or more literals live in a flat uint32
// arena addressed by 32-bit crefs; binary clauses are inlined into
// dedicated watch lists (binWatches) and never touch the arena; units
// become root-level trail assignments. Deleted learnts leave dead words
// behind that a compacting GC reclaims once Options.GCFrac of the arena
// is waste.
type Solver struct {
	opts Options

	ca      arena
	clauses []cref   // problem clauses of size >= 3
	bins    [][2]Lit // problem binary clauses (for export/counting)
	learnts []cref   // learnt clauses of size >= 3

	// watches[l] holds the long clauses that must be inspected when l
	// becomes true, i.e. that watch l.Not(). binWatches[l] holds, for
	// each binary clause (l.Not() ∨ q), the implied literal q.
	watches    [][]watcher
	binWatches [][]Lit

	numBinLearnt int // learnt binaries live only in binWatches

	assigns  []LBool // indexed by Var
	level    []int32
	reason   []reasonT
	activity []float64
	phase    []bool // saved polarity: true = last assigned true

	trail    []Lit
	trailLim []int
	qhead    int

	order  *varHeap
	varInc float64

	claInc float64

	ok    bool // false once UNSAT at root level
	stats Stats

	rng uint64 // xorshift state for RandomPolarityFreq

	// conflict scratch, valid between propagate()==true and analyze():
	// conflCr is the conflicting long clause, or crefUndef with the
	// conflicting binary clause spelled out in conflBin.
	conflCr  cref
	conflBin [2]Lit

	// cancelled is polled periodically inside search; when it reports
	// true the solve returns StatusUnknown. Set via SetCancel.
	cancelled func() bool

	// scratch buffers for analyze and reduceDB
	seen      []bool
	analyzeCl []Lit
	clearList []Lit
	lbdSeen   []uint64 // per-level stamp array for computeLBD
	lbdStamp  uint64
	reduceCl  []cref
}

// NewSolver returns a solver with default options.
func NewSolver() *Solver { return NewSolverWithOptions(Options{}) }

// NewSolverWithOptions returns a solver with the given tuning options.
func NewSolverWithOptions(opts Options) *Solver {
	s := &Solver{opts: opts, varInc: 1, claInc: 1, ok: true}
	s.rng = opts.RandSeed
	if s.rng == 0 {
		s.rng = 0x9e3779b97f4a7c15
	}
	s.order = newVarHeap(&s.activity)
	s.lbdSeen = []uint64{0} // level 0; NewVar adds one slot per level
	return s
}

// SetCancel installs a cooperative cancellation check. The search loop
// polls it periodically (every few dozen conflicts/decisions); when it
// reports true, Solve returns StatusUnknown. The solver stays usable —
// a later Solve resumes with the learnt clauses intact. Passing nil
// removes the check. Used by the portfolio engine to stop losers once
// one racer has answered.
func (s *Solver) SetCancel(cancelled func() bool) { s.cancelled = cancelled }

// nextRand advances the solver's xorshift64 stream.
func (s *Solver) nextRand() uint64 {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return s.rng
}

// coreLBD returns the glue tier threshold.
func (s *Solver) coreLBD() uint32 {
	if s.opts.CoreLBD > 0 {
		return uint32(s.opts.CoreLBD)
	}
	return 3
}

// gcFrac returns the arena waste fraction that triggers compaction.
func (s *Solver) gcFrac() float64 {
	if s.opts.GCFrac > 0 {
		return s.opts.GCFrac
	}
	return 0.25
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) + len(s.bins) }

// NumLearnts returns the current number of learnt clauses.
func (s *Solver) NumLearnts() int { return len(s.learnts) + s.numBinLearnt }

// Stats returns a copy of the solver counters.
func (s *Solver) Stats() Stats { return s.stats }

// NewVar allocates a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, Undef)
	s.level = append(s.level, -1)
	s.reason = append(s.reason, reasonNone)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, s.opts.InvertPhase)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.binWatches = append(s.binWatches, nil, nil)
	s.lbdSeen = append(s.lbdSeen, 0) // decision levels range 0..NumVars
	s.order.insert(v)
	return v
}

// NewVars allocates n fresh variables and returns the first one.
func (s *Solver) NewVars(n int) Var {
	first := Var(len(s.assigns))
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	return first
}

func (s *Solver) valueLit(l Lit) LBool {
	b := s.assigns[l.Var()]
	if l.Neg() {
		return b.Not()
	}
	return b
}

// Value returns the model value of v after a SAT answer (Undef if the
// variable was never assigned, which can happen for variables not
// occurring in any clause).
func (s *Solver) Value(v Var) LBool { return s.assigns[v] }

// ValueLit returns the model value of a literal after a SAT answer.
func (s *Solver) ValueLit(l Lit) LBool { return s.valueLit(l) }

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals. It returns
// ErrAddAfterUnsat if the solver is already in an unsatisfiable state,
// and silently strengthens/discards tautological or falsified input:
// duplicate literals are merged, true clauses dropped, false literals
// removed (at root level). Adding the empty clause makes the formula
// unsat. Calling AddClause after a SAT answer resets the search state and
// invalidates the model, so read Model first when enumerating.
func (s *Solver) AddClause(lits ...Lit) error {
	if !s.ok {
		return ErrAddAfterUnsat
	}
	if s.decisionLevel() != 0 {
		s.backtrack(0)
	}
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = LitUndef
	for _, l := range ls {
		if l.Var() < 0 || int(l.Var()) >= s.NumVars() {
			panic("sat: literal over undeclared variable")
		}
		if l == prev {
			continue // duplicate
		}
		if prev != LitUndef && l == prev.Not() {
			return nil // tautology p ∨ ¬p
		}
		switch s.valueLit(l) {
		case True:
			return nil // already satisfied at root
		case False:
			continue // falsified at root: drop literal
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return nil
	case 1:
		s.uncheckedEnqueue(out[0], reasonNone)
		if s.propagate() {
			s.ok = false
		}
		return nil
	case 2:
		s.bins = append(s.bins, [2]Lit{out[0], out[1]})
		s.attachBin(out[0], out[1])
		return nil
	}
	c := s.ca.allocProblem(out)
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return nil
}

// attach registers the first two literals of the long clause c as
// watched, each with the other as blocker.
func (s *Solver) attach(c cref) {
	ls := s.ca.lits(c)
	l0, l1 := Lit(ls[0]), Lit(ls[1])
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{cr: c, blocker: l1})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{cr: c, blocker: l0})
}

func (s *Solver) detach(c cref) {
	ls := s.ca.lits(c)
	for _, l := range [2]Lit{Lit(ls[0]).Not(), Lit(ls[1]).Not()} {
		ws := s.watches[l]
		for i := range ws {
			if ws[i].cr == c {
				ws[i] = ws[len(ws)-1]
				s.watches[l] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// attachBin records the binary clause (a ∨ b) in both inline watch lists.
func (s *Solver) attachBin(a, b Lit) {
	s.binWatches[a.Not()] = append(s.binWatches[a.Not()], b)
	s.binWatches[b.Not()] = append(s.binWatches[b.Not()], a)
}

func (s *Solver) uncheckedEnqueue(l Lit, from reasonT) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = False
	} else {
		s.assigns[v] = True
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.phase[v] = !l.Neg()
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation to fixpoint and reports whether a
// conflict was found; the conflicting clause is left in s.conflCr /
// s.conflBin for analyze. Per trail literal it makes one pass over the
// inline binary list — which never touches the arena — and one
// in-place compacting walk over the long watch list with the blocker
// fast path. It allocates only when a watch list itself must grow.
func (s *Solver) propagate() bool {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; clauses watching p.Not() must move
		s.qhead++
		s.stats.Propagations++

		// Binary pass: each q completes a clause (p.Not() ∨ q).
		for _, q := range s.binWatches[p] {
			switch s.valueLit(q) {
			case True:
			case False:
				s.conflCr = crefUndef
				s.conflBin = [2]Lit{q, p.Not()}
				s.qhead = len(s.trail)
				return true
			default:
				s.uncheckedEnqueue(q, reasonBin|reasonT(p.Not()))
			}
		}

		// Long pass: single bounds-checked walk, compacted in place.
		ws := s.watches[p]
		pn := uint32(p.Not())
		i, j := 0, 0
		for i < len(ws) {
			w := ws[i]
			if s.valueLit(w.blocker) == True {
				ws[j] = w
				i++
				j++
				continue
			}
			c := w.cr
			ls := s.ca.lits(c)
			// Normalize so ls[1] is the falsified watcher (== p.Not()).
			if ls[0] == pn {
				ls[0], ls[1] = ls[1], ls[0]
			}
			first := Lit(ls[0])
			if first != w.blocker && s.valueLit(first) == True {
				ws[j] = watcher{cr: c, blocker: first}
				i++
				j++
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(ls); k++ {
				if s.valueLit(Lit(ls[k])) != False {
					ls[1], ls[k] = ls[k], ls[1]
					nl := Lit(ls[1]).Not()
					s.watches[nl] = append(s.watches[nl], watcher{cr: c, blocker: first})
					moved = true
					break
				}
			}
			i++
			if moved {
				continue
			}
			// Clause is unit or conflicting: keep the watcher.
			ws[j] = watcher{cr: c, blocker: first}
			j++
			if s.valueLit(first) == False {
				s.conflCr = c
				s.qhead = len(s.trail)
				// Preserve the unexamined suffix of the watch list.
				for i < len(ws) {
					ws[j] = ws[i]
					i++
					j++
				}
				s.watches[p] = ws[:j]
				return true
			}
			s.uncheckedEnqueue(first, reasonT(c))
		}
		s.watches[p] = ws[:j]
	}
	return false
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayVar() { s.varInc /= 0.95 }

func (s *Solver) bumpClause(c cref) {
	act := s.ca.activity(c) + float32(s.claInc)
	s.ca.setActivity(c, act)
	if act > 1e20 {
		for _, lc := range s.learnts {
			s.ca.setActivity(lc, s.ca.activity(lc)*1e-20)
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClause() { s.claInc /= 0.999 }

// analyzeLit folds one literal of a traversed clause into the conflict
// analysis state (method, not closure, to keep analyze allocation-free).
func (s *Solver) analyzeLit(q Lit, counter *int) {
	v := q.Var()
	if s.seen[v] || s.level[v] == 0 {
		return
	}
	s.seen[v] = true
	s.bumpVar(v)
	if int(s.level[v]) == s.decisionLevel() {
		*counter++
	} else {
		s.analyzeCl = append(s.analyzeCl, q)
	}
}

// analyze performs first-UIP conflict analysis on the conflict left by
// propagate. It fills s.analyzeCl with the learnt clause (asserting
// literal first) and returns the backtrack level. Reasons are either
// arena clauses or inlined binary literals; both paths are walked
// without materializing a literal slice.
func (s *Solver) analyze() int {
	s.analyzeCl = s.analyzeCl[:0]
	s.analyzeCl = append(s.analyzeCl, LitUndef) // room for the asserting literal
	counter := 0
	var p Lit = LitUndef
	idx := len(s.trail) - 1
	cr := s.conflCr
	var bin Lit = LitUndef // the other literal when following a binary reason
	if cr == crefUndef {
		// Binary conflict: both literals are scanned on the first round.
		s.analyzeLit(s.conflBin[0], &counter)
		s.analyzeLit(s.conflBin[1], &counter)
	}
	for {
		if cr != crefUndef {
			if s.ca.learnt(cr) {
				s.bumpClause(cr)
				// Dynamic LBD improvement: a clause traversed during
				// analysis is earning its keep; if its literals now span
				// fewer decision levels than when it was learnt, lower
				// its stored LBD so tiered deletion protects it.
				if nl := s.computeLBDWords(s.ca.lits(cr)); nl < s.ca.lbd(cr) {
					s.ca.setLBD(cr, nl)
				}
			}
			ls := s.ca.lits(cr)
			start := 0
			if p != LitUndef {
				start = 1 // ls[0] is p itself when following a reason
			}
			for _, u := range ls[start:] {
				s.analyzeLit(Lit(u), &counter)
			}
		} else if bin != LitUndef {
			s.analyzeLit(bin, &counter)
		}
		// Select next literal on the trail to expand.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		r := s.reason[p.Var()]
		if r == reasonNone {
			panic("sat: analyze reached a decision below the UIP")
		}
		if r&reasonBin != 0 {
			cr, bin = crefUndef, Lit(r&^reasonBin)
		} else {
			cr, bin = cref(r), LitUndef
		}
	}
	s.analyzeCl[0] = p.Not()

	// Mark remaining seen for minimization; remember every mark so all of
	// them — including literals dropped by minimization — are cleared at
	// the end.
	for _, l := range s.analyzeCl[1:] {
		s.seen[l.Var()] = true
		s.clearList = append(s.clearList, l)
	}
	// Recursive clause minimization: drop literals implied by the rest.
	j := 1
	for i := 1; i < len(s.analyzeCl); i++ {
		l := s.analyzeCl[i]
		if s.reason[l.Var()] == reasonNone || !s.litRedundant(l, 0) {
			s.analyzeCl[j] = l
			j++
		}
	}
	s.analyzeCl = s.analyzeCl[:j]

	// Compute backtrack level = max level among lits[1:].
	btLevel := 0
	if len(s.analyzeCl) > 1 {
		maxI := 1
		for i := 2; i < len(s.analyzeCl); i++ {
			if s.level[s.analyzeCl[i].Var()] > s.level[s.analyzeCl[maxI].Var()] {
				maxI = i
			}
		}
		s.analyzeCl[1], s.analyzeCl[maxI] = s.analyzeCl[maxI], s.analyzeCl[1]
		btLevel = int(s.level[s.analyzeCl[1].Var()])
	}
	// Clear seen marks (including any set during litRedundant).
	for _, l := range s.analyzeCl {
		s.seen[l.Var()] = false
	}
	for _, l := range s.clearList {
		s.seen[l.Var()] = false
	}
	s.clearList = s.clearList[:0]
	return btLevel
}

// litRedundant reports whether literal l is implied by the other literals
// of the learnt clause (limited-depth recursive minimization).
func (s *Solver) litRedundant(l Lit, depth int) bool {
	if depth > 16 {
		return false
	}
	r := s.reason[l.Var()]
	if r == reasonNone {
		return false
	}
	if r&reasonBin != 0 {
		return s.redundantChild(Lit(r&^reasonBin), depth)
	}
	for _, u := range s.ca.lits(cref(r)) {
		q := Lit(u)
		if q.Var() == l.Var() {
			continue
		}
		if !s.redundantChild(q, depth) {
			return false
		}
	}
	return true
}

// redundantChild checks one antecedent literal during minimization,
// memoizing a proven-redundant result in the seen marks.
func (s *Solver) redundantChild(q Lit, depth int) bool {
	v := q.Var()
	if s.level[v] == 0 || s.seen[v] {
		return true
	}
	if s.reason[v] == reasonNone {
		return false
	}
	if !s.litRedundant(q, depth+1) {
		return false
	}
	// q proved redundant: mark so siblings can reuse the result.
	s.seen[v] = true
	s.clearList = append(s.clearList, q)
	return true
}

// computeLBD returns the literal block distance of a clause: the number
// of distinct decision levels among its literals. Called on a fresh
// learnt clause before backtracking, so every literal is still assigned.
func (s *Solver) computeLBD(lits []Lit) uint32 {
	s.lbdStamp++
	lbd := uint32(0)
	for _, l := range lits {
		lvl := s.level[l.Var()]
		if lvl <= 0 {
			continue
		}
		if s.lbdSeen[lvl] != s.lbdStamp {
			s.lbdSeen[lvl] = s.lbdStamp
			lbd++
		}
	}
	if lbd == 0 {
		lbd = 1
	}
	return lbd
}

// computeLBDWords is computeLBD over a raw arena literal run.
func (s *Solver) computeLBDWords(lits []uint32) uint32 {
	s.lbdStamp++
	lbd := uint32(0)
	for _, u := range lits {
		lvl := s.level[Lit(u).Var()]
		if lvl <= 0 {
			continue
		}
		if s.lbdSeen[lvl] != s.lbdStamp {
			s.lbdSeen[lvl] = s.lbdStamp
			lbd++
		}
	}
	if lbd == 0 {
		lbd = 1
	}
	return lbd
}

// recordLBD folds a fresh learnt clause's LBD into the stats.
func (s *Solver) recordLBD(lbd uint32) {
	s.stats.Learnt++
	s.stats.LBDSum += int64(lbd)
	bucket := int(lbd) - 1
	if bucket >= len(s.stats.LBDHist) {
		bucket = len(s.stats.LBDHist) - 1
	}
	s.stats.LBDHist[bucket]++
	if lbd <= 2 {
		s.stats.GlueLearnt++
	}
}

// backtrack undoes assignments above the given level.
func (s *Solver) backtrack(toLevel int) {
	if s.decisionLevel() <= toLevel {
		return
	}
	bound := s.trailLim[toLevel]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assigns[v] = Undef
		s.reason[v] = reasonNone
		s.level[v] = -1
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:toLevel]
	// Trail-position-aware queue reset: everything below the truncation
	// point was propagated before the discarded levels existed, so the
	// queue resumes at the new trail end — never past it, and never
	// rewound below a still-unpropagated prefix.
	if s.qhead > bound {
		s.qhead = bound
	}
}

// pickBranchVar selects the next decision variable, or -1 if all assigned.
func (s *Solver) pickBranchVar() Var {
	if s.opts.DisableVSIDS {
		for v := 0; v < s.NumVars(); v++ {
			if s.assigns[v] == Undef {
				return Var(v)
			}
		}
		return -1
	}
	for !s.order.empty() {
		v := s.order.removeMax()
		if s.assigns[v] == Undef {
			return v
		}
	}
	return -1
}

// reduceDB halves the learnt database. The core tier — clauses with
// LBD at or below Options.CoreLBD — is exempt, as are clauses locked as
// the reason of a current assignment (learnt binaries never enter the
// arena and are never deleted). The rest is deleted worst-first: highest
// LBD, then lowest activity, with the cref as a deterministic tiebreak.
// With DisableLBD the ordering is pure activity, the pre-arena policy.
// Deletion only marks arena words dead; compaction runs once the waste
// crosses Options.GCFrac.
func (s *Solver) reduceDB() {
	locked := make(map[cref]bool, len(s.trail)/4+1)
	for _, l := range s.trail {
		r := s.reason[l.Var()]
		if r != reasonNone && r&reasonBin == 0 {
			locked[cref(r)] = true
		}
	}
	core := s.coreLBD()
	kept := s.learnts[:0]
	cands := s.reduceCl[:0]
	for _, c := range s.learnts {
		if locked[c] || (!s.opts.DisableLBD && s.ca.lbd(c) <= core) {
			kept = append(kept, c)
		} else {
			cands = append(cands, c)
		}
	}
	if s.opts.DisableLBD {
		sort.Slice(cands, func(i, j int) bool {
			ai, aj := s.ca.activity(cands[i]), s.ca.activity(cands[j])
			if ai != aj {
				return ai < aj
			}
			return cands[i] > cands[j]
		})
	} else {
		sort.Slice(cands, func(i, j int) bool {
			// LBD saturates: beyond lbdSat levels a clause is "wide"
			// whatever the exact count, and activity discriminates
			// better than glue among uniformly wide clauses.
			li, lj := s.ca.lbd(cands[i]), s.ca.lbd(cands[j])
			if li > lbdSat {
				li = lbdSat
			}
			if lj > lbdSat {
				lj = lbdSat
			}
			if li != lj {
				return li > lj
			}
			ai, aj := s.ca.activity(cands[i]), s.ca.activity(cands[j])
			if ai != aj {
				return ai < aj
			}
			return cands[i] > cands[j]
		})
	}
	drop := len(cands) / 2
	for _, c := range cands[:drop] {
		s.detach(c)
		s.ca.free(c)
		s.stats.Deleted++
	}
	s.learnts = append(kept, cands[drop:]...)
	s.reduceCl = cands[:0]
	if s.ca.shouldGC(s.gcFrac()) {
		s.garbageCollect()
	}
}

// garbageCollect compacts the clause arena: live clauses are relocated
// into a fresh buffer in list order (problem clauses, then learnts) and
// every outstanding reference — clause lists, watch lists, and the long
// reasons of assigned variables — is forwarded. Relocation preserves
// watch-list order, so the search trajectory is unchanged by a GC.
func (s *Solver) garbageCollect() {
	newData := make([]uint32, 0, len(s.ca.data)-int(s.ca.wasted))
	for i, c := range s.clauses {
		s.clauses[i] = s.ca.relocate(c, &newData)
	}
	for i, c := range s.learnts {
		s.learnts[i] = s.ca.relocate(c, &newData)
	}
	// Watchers of deleted clauses were detached by reduceDB, so every
	// remaining reference has a forwarding address by now.
	for li := range s.watches {
		ws := s.watches[li]
		for i := range ws {
			ws[i].cr = s.ca.relocate(ws[i].cr, &newData)
		}
	}
	for _, l := range s.trail {
		r := s.reason[l.Var()]
		if r != reasonNone && r&reasonBin == 0 {
			s.reason[l.Var()] = reasonT(s.ca.relocate(cref(r), &newData))
		}
	}
	s.ca.data = newData
	s.ca.wasted = 0
	s.stats.ArenaGCs++
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int64) int64 {
	x := i - 1
	// Find the finite subsequence containing x and its size.
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << uint(seq)
}

// Solve runs the CDCL search and returns StatusSat, StatusUnsat, or
// StatusUnknown when Options.MaxConflicts is exceeded.
func (s *Solver) Solve() Status { return s.SolveAssuming() }

// SolveAssuming solves under the given assumption literals: they are
// decided first and never flipped, so an UNSAT answer means "unsat
// under these assumptions" while the clause database stays reusable —
// the standard incremental-SAT interface. Learnt clauses and variable
// activities persist across calls, which is what makes sweeping many
// assumption sets over one base formula cheap.
func (s *Solver) SolveAssuming(assumptions ...Lit) Status {
	if !s.ok {
		return StatusUnsat
	}
	s.backtrack(0)
	if s.propagate() {
		s.ok = false
		return StatusUnsat
	}
	for _, a := range assumptions {
		switch s.valueLit(a) {
		case True:
			continue
		case False:
			s.backtrack(0)
			return StatusUnsat
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(a, reasonNone)
		if s.propagate() {
			s.backtrack(0)
			return StatusUnsat
		}
	}
	// The floor is the decision level actually created: duplicate or
	// already-satisfied assumptions open no level of their own.
	return s.search(s.decisionLevel())
}

// search runs the CDCL loop, never backtracking past floorLevel (the
// assumption levels).
func (s *Solver) search(floorLevel int) Status {
	restartBase := s.opts.RestartBase
	if restartBase <= 0 {
		restartBase = 100
	}
	restart := int64(1)
	budget := restartBase * luby(restart)
	conflictsAtRestart := int64(0)
	maxLearnts := int64(s.NumClauses()/3 + 100)
	sinceCancelPoll := 0
	for {
		// Cooperative cancellation: every iteration ends in a conflict or
		// a decision, so polling on a shared counter here bounds the
		// latency of a portfolio cancel without a check in the hot
		// propagation loop.
		sinceCancelPoll++
		if sinceCancelPoll >= 64 {
			sinceCancelPoll = 0
			if s.cancelled != nil && s.cancelled() {
				s.backtrack(0)
				return StatusUnknown
			}
		}
		if s.propagate() {
			s.stats.Conflicts++
			conflictsAtRestart++
			if s.decisionLevel() <= floorLevel {
				if floorLevel == 0 {
					s.ok = false
				} else {
					s.backtrack(0)
				}
				return StatusUnsat
			}
			btLevel := s.analyze()
			learnt := s.analyzeCl
			var lbd uint32
			if len(learnt) > 1 {
				lbd = s.computeLBD(learnt) // before backtrack: all lits assigned
			}
			if btLevel < floorLevel {
				btLevel = floorLevel
			}
			s.backtrack(btLevel)
			switch {
			case len(learnt) == 1:
				s.uncheckedEnqueue(learnt[0], reasonNone)
			case len(learnt) == 2:
				s.attachBin(learnt[0], learnt[1])
				s.numBinLearnt++
				s.recordLBD(lbd)
				s.uncheckedEnqueue(learnt[0], reasonBin|reasonT(learnt[1]))
			default:
				c := s.ca.allocLearnt(learnt, lbd, float32(s.claInc))
				s.learnts = append(s.learnts, c)
				s.recordLBD(lbd)
				s.attach(c)
				s.uncheckedEnqueue(learnt[0], reasonT(c))
			}
			s.decayVar()
			s.decayClause()
			if s.opts.MaxConflicts > 0 && s.stats.Conflicts >= s.opts.MaxConflicts {
				s.backtrack(0)
				return StatusUnknown
			}
			continue
		}
		if !s.opts.DisableRestarts && conflictsAtRestart >= budget {
			s.stats.Restarts++
			restart++
			budget = restartBase * luby(restart)
			conflictsAtRestart = 0
			s.backtrack(floorLevel)
			continue
		}
		if int64(len(s.learnts)) >= maxLearnts+int64(len(s.trail)) {
			s.reduceDB()
			maxLearnts += maxLearnts / 10
		}
		// Every assignment sits on the trail, so a full trail means SAT
		// without draining the variable heap of its assigned entries —
		// the common endgame when propagation finishes the instance.
		if len(s.trail) == s.NumVars() {
			return StatusSat
		}
		v := s.pickBranchVar()
		if v < 0 {
			return StatusSat // all variables assigned, no conflict
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		neg := !s.phase[v]
		if s.opts.DisablePhaseSaving {
			neg = true
		}
		if s.opts.RandomPolarityFreq > 0 {
			r := s.nextRand()
			if float64(r%1000)/1000 < s.opts.RandomPolarityFreq {
				neg = r&(1<<32) != 0
			}
		}
		s.uncheckedEnqueue(MkLit(v, neg), reasonNone)
	}
}

// Model returns the satisfying assignment as a []bool indexed by
// variable. Unconstrained variables default to false. Only meaningful
// after Solve returned StatusSat.
func (s *Solver) Model() []bool {
	m := make([]bool, s.NumVars())
	for v := range m {
		m[v] = s.assigns[v] == True
	}
	return m
}

// ResetSearch backtracks to level 0 so more clauses can be added after a
// SAT answer (model enumeration).
func (s *Solver) ResetSearch() { s.backtrack(0) }

// ExportCNF snapshots the solver's problem (non-learnt) clauses and
// root-level units as a standalone CNF over the same variable indexing.
// The export is equivalent to the clauses originally added: AddClause's
// root-level simplifications (dropped satisfied clauses, removed false
// literals) are all justified by the exported unit clauses. This is the
// bridge from the relational translator — which emits clauses straight
// into one solver — to the portfolio engine, which must load the same
// formula into many solvers.
func (s *Solver) ExportCNF() *CNF {
	f := &CNF{NumVars: s.NumVars()}
	if !s.ok {
		f.AddClause() // empty clause: known unsat at root
		return f
	}
	for v := 0; v < s.NumVars(); v++ {
		if s.level[v] == 0 && s.assigns[v] != Undef && s.reason[v] == reasonNone {
			f.AddClause(MkLit(Var(v), s.assigns[v] == False))
		}
	}
	for _, bc := range s.bins {
		f.AddClause(bc[0], bc[1])
	}
	var buf []Lit
	for _, c := range s.clauses {
		buf = buf[:0]
		for _, u := range s.ca.lits(c) {
			buf = append(buf, Lit(u))
		}
		f.AddClause(buf...)
	}
	return f
}
