package sat

// SolveBrute decides satisfiability of a CNF by plain DPLL without
// learning. It is the reference oracle the property tests compare the
// CDCL solver against, and the baseline for the heuristics ablation
// benches. It returns the status and, when satisfiable, a model.
func SolveBrute(f *CNF) (Status, []bool) {
	assign := make([]LBool, f.NumVars)
	if m, ok := dpll(f, assign); ok {
		model := make([]bool, f.NumVars)
		for i, b := range m {
			model[i] = b == True
		}
		return StatusSat, model
	}
	return StatusUnsat, nil
}

// dpll performs unit propagation then splits on the first unassigned var.
func dpll(f *CNF, assign []LBool) ([]LBool, bool) {
	// Unit propagation to fixpoint.
	for {
		progress := false
		for _, c := range f.Clauses {
			unassigned := -1
			nUnassigned := 0
			satisfied := false
			for i, l := range c {
				switch evalLit(assign, l) {
				case True:
					satisfied = true
				case Undef:
					nUnassigned++
					unassigned = i
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch nUnassigned {
			case 0:
				return nil, false // falsified clause
			case 1:
				l := c[unassigned]
				if l.Neg() {
					assign[l.Var()] = False
				} else {
					assign[l.Var()] = True
				}
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Find a split variable.
	split := -1
	for v, b := range assign {
		if b == Undef {
			split = v
			break
		}
	}
	if split == -1 {
		if evalAll(f, assign) {
			return assign, true
		}
		return nil, false
	}
	for _, val := range []LBool{True, False} {
		next := append([]LBool(nil), assign...)
		next[split] = val
		if m, ok := dpll(f, next); ok {
			return m, true
		}
	}
	return nil, false
}

func evalLit(assign []LBool, l Lit) LBool {
	b := assign[l.Var()]
	if l.Neg() {
		return b.Not()
	}
	return b
}

func evalAll(f *CNF, assign []LBool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if evalLit(assign, l) == True {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// CountModels enumerates the number of satisfying assignments over the
// first n variables by exhaustive search. Only usable for small n; the
// relalg tests use it to validate instance enumeration.
func CountModels(f *CNF, n int) int {
	if n > 24 {
		panic("sat: CountModels limited to 24 variables")
	}
	count := 0
	model := make([]bool, f.NumVars)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 0; v < n; v++ {
			model[v] = mask&(1<<uint(v)) != 0
		}
		if f.Eval(model) {
			count++
		}
	}
	return count
}
