package sat

import "math"

// The clause arena stores every clause of three or more literals in one
// flat []uint32, addressed by 32-bit clause references (cref). This
// replaces the old []*clause representation: a watch-list walk touches
// one contiguous slice instead of chasing a pointer per clause, learnt
// clauses carry their LBD and activity inline, and deleting clauses
// never frees individual objects — dead words are counted and reclaimed
// by a compacting GC that relocates live clauses and rewrites the
// references held by watch lists and implication reasons.
//
// Layout, with c the cref (index of the header word):
//
//	problem clause:           [size<<2|flags] lit0 lit1 lit2 ...
//	learnt clause:  [lbd][act] [size<<2|flags] lit0 lit1 lit2 ...
//
// The two learnt-only words sit *before* the header so the hot path —
// size decode plus literal walk — is identical for both kinds. act
// holds math.Float32bits of the clause activity. flags are flagLearnt
// and flagReloc; during GC a relocated clause's header gains flagReloc
// and its first literal slot holds the forwarding cref.

// cref is a 32-bit reference into the clause arena. Only clauses of
// three or more literals live there: binaries are inlined into the
// binary watch lists and units become trail assignments.
type cref uint32

// crefUndef is the "no clause" sentinel.
const crefUndef cref = ^cref(0)

const (
	flagLearnt    = 1
	flagReloc     = 2
	arenaSizeBits = 2 // size is stored as header >> arenaSizeBits
)

// arena is the flat clause store.
type arena struct {
	data   []uint32
	wasted uint32 // words occupied by deleted clauses, reclaimed by GC
}

// clauseWords returns the total footprint in words of the clause at c.
func clauseWords(header uint32) uint32 {
	n := 1 + header>>arenaSizeBits
	if header&flagLearnt != 0 {
		n += 2
	}
	return n
}

// allocProblem appends a problem clause and returns its cref.
func (a *arena) allocProblem(lits []Lit) cref {
	c := cref(len(a.data))
	a.data = append(a.data, uint32(len(lits))<<arenaSizeBits)
	for _, l := range lits {
		a.data = append(a.data, uint32(l))
	}
	a.checkBounds()
	return c
}

// allocLearnt appends a learnt clause with its LBD and activity and
// returns its cref.
func (a *arena) allocLearnt(lits []Lit, lbd uint32, act float32) cref {
	a.data = append(a.data, lbd, math.Float32bits(act))
	c := cref(len(a.data))
	a.data = append(a.data, uint32(len(lits))<<arenaSizeBits|flagLearnt)
	for _, l := range lits {
		a.data = append(a.data, uint32(l))
	}
	a.checkBounds()
	return c
}

// checkBounds guards the tagged-reference invariant: crefs must fit in
// 31 bits so a reason word can spare its top bit for the binary tag.
// 2^31 words is an 8 GiB arena — far past any workload this repo runs,
// so this is an assertion, not a recoverable condition.
func (a *arena) checkBounds() {
	if len(a.data) >= 1<<31 {
		panic("sat: clause arena exceeds 2^31 words")
	}
}

// size returns the number of literals of the clause at c.
func (a *arena) size(c cref) int { return int(a.data[c] >> arenaSizeBits) }

// learnt reports whether the clause at c is learnt.
func (a *arena) learnt(c cref) bool { return a.data[c]&flagLearnt != 0 }

// lits returns the literal run of the clause at c as a mutable uint32
// slice (each element is a Lit bit pattern).
func (a *arena) lits(c cref) []uint32 {
	return a.data[c+1 : c+1+cref(a.data[c]>>arenaSizeBits)]
}

// lbd returns the stored LBD of a learnt clause.
func (a *arena) lbd(c cref) uint32 { return a.data[c-2] }

// setLBD overwrites the stored LBD of a learnt clause.
func (a *arena) setLBD(c cref, lbd uint32) { a.data[c-2] = lbd }

// activity returns the stored activity of a learnt clause.
func (a *arena) activity(c cref) float32 { return math.Float32frombits(a.data[c-1]) }

// setActivity overwrites the stored activity of a learnt clause.
func (a *arena) setActivity(c cref, act float32) { a.data[c-1] = math.Float32bits(act) }

// free marks the clause at c as garbage. The words stay in place until
// the next compaction; only the waste counter moves.
func (a *arena) free(c cref) { a.wasted += clauseWords(a.data[c]) }

// shouldGC reports whether the wasted fraction has crossed frac.
func (a *arena) shouldGC(frac float64) bool {
	if len(a.data) == 0 {
		return false
	}
	return float64(a.wasted) >= frac*float64(len(a.data))
}

// relocate moves the clause at c into dst (idempotently: a clause
// already moved forwards to its new address) and returns the new cref.
func (a *arena) relocate(c cref, dst *[]uint32) cref {
	h := a.data[c]
	if h&flagReloc != 0 {
		return cref(a.data[c+1])
	}
	start, nr := c, cref(len(*dst))
	if h&flagLearnt != 0 {
		start -= 2
		nr += 2
	}
	*dst = append(*dst, a.data[start:c+1+cref(h>>arenaSizeBits)]...)
	a.data[c] |= flagReloc
	a.data[c+1] = uint32(nr)
	return nr
}
