package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The ablation matrix over the new storage/deletion options: every
// combination must stay sound against the brute-force oracle.
func TestOptionsAblationLBDAndArenaGC(t *testing.T) {
	variants := []Options{
		{},
		{DisableLBD: true},
		{CoreLBD: 2},
		{CoreLBD: 5},
		{GCFrac: 0.01}, // compact aggressively
		{GCFrac: 0.9},  // compact almost never
		{DisableLBD: true, GCFrac: 0.01},
		{CoreLBD: 2, GCFrac: 0.05, DisableRestarts: true},
		{DisableVSIDS: true, GCFrac: 0.01},
	}
	for seed := int64(0); seed < 6; seed++ {
		f := randomCNF(18, 80, 3, seed+900)
		want, _ := SolveBrute(f)
		for i, opt := range variants {
			s := NewSolverWithOptions(opt)
			if err := f.LoadInto(s); err != nil {
				t.Fatal(err)
			}
			if got := s.Solve(); got != want {
				t.Errorf("seed %d variant %d (%+v): got %v, want %v", seed, i, opt, got, want)
			}
		}
	}
}

// Arena compaction must relocate clauses without corrupting the model:
// force GCs with a tiny threshold on an instance large enough to learn
// and delete many clauses, then re-evaluate the model.
func TestModelValidAfterArenaCompaction(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		f := randomCNF(100, 400, 3, seed+3100) // under the 4.26 threshold: mostly SAT
		s := NewSolverWithOptions(Options{GCFrac: 0.01})
		if err := f.LoadInto(s); err != nil {
			t.Fatal(err)
		}
		status := s.Solve()
		want, _ := SolveBrute(f)
		if status != want {
			t.Fatalf("seed %d: got %v, DPLL oracle %v", seed, status, want)
		}
		if status == StatusSat && !f.Eval(s.Model()) {
			t.Fatalf("seed %d: model does not satisfy the formula after compaction", seed)
		}
	}
	// Dedicated check that the tiny threshold actually triggers GCs on a
	// conflict-heavy instance, so the relocation path is exercised.
	s := NewSolverWithOptions(Options{GCFrac: 0.01})
	if err := PigeonholeCNF(7).LoadInto(s); err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != StatusUnsat {
		t.Fatalf("PHP(8,7) = %v, want UNSAT", got)
	}
	if st := s.Stats(); st.ArenaGCs == 0 {
		t.Fatalf("GCFrac=0.01 never compacted (deleted %d clauses)", st.Deleted)
	}
}

// Property: a persistent solver answering a random sequence of
// assumption sets agrees with a fresh solver (and the brute oracle) on
// every query — learnt clauses carried across solves never change a
// verdict.
func TestRandomAssumptionSequencesIncrementalVsFresh(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x2c55))
		vars := 6 + rng.Intn(6)
		cnf := randomCNF(vars, vars*4, 3, seed^0xbeef)
		inc := NewSolver()
		if err := cnf.LoadInto(inc); err != nil {
			return false
		}
		for q := 0; q < 5; q++ {
			n := rng.Intn(4)
			seen := map[Var]bool{}
			var asms []Lit
			for len(asms) < n {
				v := Var(rng.Intn(vars))
				if seen[v] {
					continue
				}
				seen[v] = true
				asms = append(asms, MkLit(v, rng.Intn(2) == 0))
			}
			got := inc.SolveAssuming(asms...)

			fresh := NewSolver()
			if err := cnf.LoadInto(fresh); err != nil {
				return false
			}
			if fresh.SolveAssuming(asms...) != got {
				t.Logf("seed %d query %d: incremental %v disagrees with fresh solver", seed, q, got)
				return false
			}
			ref := &CNF{NumVars: cnf.NumVars}
			for _, c := range cnf.Clauses {
				ref.AddClause(c...)
			}
			for _, a := range asms {
				ref.AddClause(a)
			}
			want, _ := SolveBrute(ref)
			if got != want {
				t.Logf("seed %d query %d: got %v, brute %v", seed, q, got, want)
				return false
			}
			if got == StatusSat && !ref.Eval(inc.Model()) {
				t.Logf("seed %d query %d: model violates formula+assumptions", seed, q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Every clause ExportSince hands out must be implied by the original
// formula: root units, root binaries, and problem clauses alike (learnt
// clauses are not exported — they are derived, so exporting them would
// also be sound, but the contract is "clauses added since the mark").
func TestExportSinceClausesImplied(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cnf := randomCNF(14, 56, 3, seed+7000)
		s := NewSolver()
		m := s.Mark()
		if err := cnf.LoadInto(s); err != nil {
			t.Fatal(err)
		}
		s.Solve() // root-level propagation may add units since the mark
		exported := s.ExportSince(m)
		for ci, c := range exported {
			if len(c) == 0 {
				// The UNSAT marker: the formula itself must be UNSAT.
				if want, _ := SolveBrute(cnf); want != StatusUnsat {
					t.Fatalf("seed %d: empty export from a satisfiable formula", seed)
				}
				continue
			}
			// F ∧ ¬C must be UNSAT for an implied clause C.
			ref := &CNF{NumVars: cnf.NumVars}
			for _, orig := range cnf.Clauses {
				ref.AddClause(orig...)
			}
			for _, l := range c {
				ref.AddClause(l.Not())
			}
			if want, _ := SolveBrute(ref); want != StatusUnsat {
				t.Fatalf("seed %d: exported clause %d (%v) is not implied", seed, ci, c)
			}
		}
	}
}

// Mark/ExportSince: loading the exported suffix into a second solver
// must reproduce the first solver's verdicts under shared assumptions.
func TestExportSinceFeedsSecondSolver(t *testing.T) {
	cnf := randomCNF(12, 44, 3, 5150)
	a := NewSolver()
	m := a.Mark()
	if err := cnf.LoadInto(a); err != nil {
		t.Fatal(err)
	}
	b := NewSolver()
	for b.NumVars() < a.NumVars() {
		b.NewVar()
	}
	for _, c := range a.ExportSince(m) {
		if err := b.AddClause(c...); err != nil {
			if want, _ := SolveBrute(cnf); want != StatusUnsat {
				t.Fatal("export made the mirror UNSAT but the formula is SAT")
			}
			return
		}
	}
	for v := 0; v < cnf.NumVars; v++ {
		asm := PosLit(Var(v))
		if ga, gb := a.SolveAssuming(asm), b.SolveAssuming(asm); ga != gb {
			t.Fatalf("var %d: original %v, mirror %v", v, ga, gb)
		}
	}
}
