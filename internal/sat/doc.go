// Package sat implements a complete CDCL boolean satisfiability solver.
//
// It is the bottom layer of the verification stack: the relational logic
// kernel (internal/relalg) translates bounded first-order relational
// formulas into CNF exactly the way the Alloy Analyzer's Kodkod engine
// does, and this solver plays the role of MiniSat. The implementation
// uses the standard modern toolkit: two-watched-literal propagation,
// VSIDS branching with phase saving, first-UIP conflict analysis with
// recursive clause minimization, Luby restarts, and learnt-clause
// database reduction.
//
// # Storage and the propagation hot path
//
// Clauses live in a flat uint32 arena addressed by 32-bit clause
// references (MiniSat's ClauseAllocator design): a problem clause is a
// header word plus its literal run, a learnt clause carries two extra
// prefix words (LBD and a float32 activity). The arena is compacted by
// a relocating garbage collector once the deleted fraction crosses
// Options.GCFrac, so long sweeps cannot fragment memory; Stats.ArenaGCs
// counts compactions. Binary clauses never touch the arena at all: each
// literal keeps an inline list of its binary implications, propagated
// in a dedicated pass before the long-clause walk. Long-clause watchers
// carry a blocker literal whose satisfaction skips the clause without
// loading it. Propagation resumes from the trail position where the
// last call stopped, and the per-conflict path allocates nothing.
//
// # Learnt-clause management
//
// Learnt clauses are ranked by literal-block distance (LBD, the glue
// metric of Glucose): clauses at or below Options.CoreLBD (default 3)
// are never deleted, the rest are sorted worst-first by saturated LBD,
// then activity, and the worst half is dropped at each reduction. LBD
// is recomputed when a learnt clause participates in conflict analysis
// and kept if lower. Options.DisableLBD reverts to pure
// activity-ordered deletion for ablation.
//
// # Incremental solving
//
// SolveAssuming decides the formula under assumption literals without
// destroying learnt state, so one Solver answers a sequence of related
// queries ever faster; Mark/ExportSince expose the clause stream added
// after a point (root units, binaries, problem clauses) for mirroring
// into other solvers, which is how portfolio sessions keep diversified
// members in sync across an incremental sweep.
//
// Key types: Solver (NewVar/AddClause/Solve/Value, incremental across
// Solve calls so blocking clauses support model enumeration), Options
// (heuristic ablations plus the diversification knobs the portfolio
// engine uses: phase inversion, restart base, seeded random polarity,
// and the storage knobs CoreLBD/GCFrac/DisableLBD), Status
// (SAT/UNSAT/Unknown), DIMACS I/O, and a brute-force oracle for
// differential testing.
//
// Determinism and concurrency: a solve is fully deterministic in
// (clauses, Options) — RandSeed seeds a deterministic stream, so equal
// inputs replay the same search. A Solver is single-goroutine; parallel
// solving is the portfolio package's job, which runs one Solver per
// worker and stops losers through Options' cooperative cancel check.
package sat
