// Package sat implements a complete CDCL boolean satisfiability solver.
//
// It is the bottom layer of the verification stack: the relational logic
// kernel (internal/relalg) translates bounded first-order relational
// formulas into CNF exactly the way the Alloy Analyzer's Kodkod engine
// does, and this solver plays the role of MiniSat. The implementation
// uses the standard modern toolkit: two-watched-literal propagation,
// VSIDS branching with phase saving, first-UIP conflict analysis with
// recursive clause minimization, Luby restarts, and learnt-clause
// database reduction.
//
// Key types: Solver (NewVar/AddClause/Solve/Value, incremental across
// Solve calls so blocking clauses support model enumeration), Options
// (heuristic ablations plus the diversification knobs the portfolio
// engine uses: phase inversion, restart base, seeded random polarity),
// Status (SAT/UNSAT/Unknown), DIMACS I/O, and a brute-force oracle for
// differential testing.
//
// Determinism and concurrency: a solve is fully deterministic in
// (clauses, Options) — RandSeed seeds a deterministic stream, so equal
// inputs replay the same search. A Solver is single-goroutine; parallel
// solving is the portfolio package's job, which runs one Solver per
// worker and stops losers through Options' cooperative cancel check.
package sat
