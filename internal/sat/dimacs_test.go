package sat

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	in := `c a comment
p cnf 3 2
1 -2 0
2 3 0
`
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || f.NumClauses() != 2 {
		t.Fatalf("parsed vars=%d clauses=%d", f.NumVars, f.NumClauses())
	}
	if f.Clauses[0][0] != PosLit(0) || f.Clauses[0][1] != NegLit(1) {
		t.Fatalf("clause 0 = %v", f.Clauses[0])
	}
}

func TestParseDIMACSMultilineClause(t *testing.T) {
	in := "p cnf 2 1\n1\n2 0\n"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 1 || len(f.Clauses[0]) != 2 {
		t.Fatalf("parsed %v", f.Clauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"p cnf x 2\n1 0\n",
		"p dnf 1 1\n1 0\n",
		"p cnf 1 1\n1 z 0\n",
		"p cnf 1 1\n1\n", // unterminated clause
	}
	for _, in := range cases {
		if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f := randomCNF(10, 30, 3, 11)
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || g.NumClauses() != f.NumClauses() {
		t.Fatalf("roundtrip mismatch: vars %d/%d clauses %d/%d",
			g.NumVars, f.NumVars, g.NumClauses(), f.NumClauses())
	}
	for i := range f.Clauses {
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != g.Clauses[i][j] {
				t.Fatalf("clause %d differs: %v vs %v", i, f.Clauses[i], g.Clauses[i])
			}
		}
	}
}

func TestCNFEval(t *testing.T) {
	f := &CNF{}
	f.AddClause(PosLit(0), NegLit(1))
	if !f.Eval([]bool{true, true}) {
		t.Error("model {t,t} should satisfy (x ∨ ¬y)")
	}
	if f.Eval([]bool{false, true}) {
		t.Error("model {f,t} should falsify (x ∨ ¬y)")
	}
}

func TestCountModels(t *testing.T) {
	f := &CNF{}
	f.AddClause(PosLit(0), PosLit(1))
	if got := CountModels(f, 2); got != 3 {
		t.Fatalf("CountModels = %d, want 3", got)
	}
}

func TestSolveBruteSat(t *testing.T) {
	f := &CNF{}
	f.AddClause(PosLit(0), PosLit(1))
	f.AddClause(NegLit(0))
	status, model := SolveBrute(f)
	if status != StatusSat {
		t.Fatalf("status = %v", status)
	}
	if model[0] || !model[1] {
		t.Fatalf("model = %v, want [false true]", model)
	}
}

func TestSolveBruteUnsat(t *testing.T) {
	f := &CNF{}
	f.AddClause(PosLit(0))
	f.AddClause(NegLit(0))
	if status, _ := SolveBrute(f); status != StatusUnsat {
		t.Fatalf("status = %v, want UNSAT", status)
	}
}
