package sat

// ClauseMark is a snapshot of a solver's clause streams, taken with
// Mark and consumed by ExportSince. The three cursors cover the three
// places an added clause can land: root-level unit assignments on the
// trail, inline binary clauses, and long clauses in the arena.
type ClauseMark struct {
	Units int
	Bins  int
	Longs int
}

// Mark records the current position of the solver's problem-clause
// streams. The solver is first backtracked to the root level so the
// trail prefix counted here is exactly the root-level units.
func (s *Solver) Mark() ClauseMark {
	s.backtrack(0)
	return ClauseMark{Units: len(s.trail), Bins: len(s.bins), Longs: len(s.clauses)}
}

// ExportSince returns every problem clause added after the mark, as
// plain literal slices: root units (including units derived by root
// propagation — they are implied, so exporting them is sound), then
// binaries, then long clauses. Together with the variable count from
// NumVars this is the increment a portfolio member needs to stay
// equisatisfiable with this solver after more of the formula was added:
// a member that has received every prior export sees the same root
// facts, so AddClause performs the same simplifications. If the solver
// has become unsatisfiable at the root, the export is the single empty
// clause.
func (s *Solver) ExportSince(m ClauseMark) [][]Lit {
	if !s.ok {
		return [][]Lit{{}}
	}
	s.backtrack(0)
	out := make([][]Lit, 0, len(s.trail)-m.Units+len(s.bins)-m.Bins+len(s.clauses)-m.Longs)
	for _, l := range s.trail[m.Units:] {
		out = append(out, []Lit{l})
	}
	for _, bc := range s.bins[m.Bins:] {
		out = append(out, []Lit{bc[0], bc[1]})
	}
	for _, c := range s.clauses[m.Longs:] {
		ls := s.ca.lits(c)
		cl := make([]Lit, len(ls))
		for i, u := range ls {
			cl[i] = Lit(u)
		}
		out = append(out, cl)
	}
	return out
}
