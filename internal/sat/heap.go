package sat

// varHeap is an intrusive max-heap over variables ordered by VSIDS
// activity. It keeps the index of each variable inside the heap so
// activity bumps can sift in place.
type varHeap struct {
	act     *[]float64 // shared with the solver's activity slice
	heap    []Var
	indices []int // indices[v] = position in heap, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) growTo(n int) {
	for len(h.indices) < n {
		h.indices = append(h.indices, -1)
	}
}

func (h *varHeap) inHeap(v Var) bool {
	return int(v) < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) less(a, b Var) bool { return (*h.act)[a] > (*h.act)[b] }

func (h *varHeap) percolateUp(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.indices[h.heap[i]] = i
		i = parent
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) percolateDown(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.less(h.heap[right], h.heap[left]) {
			child = right
		}
		if !h.less(h.heap[child], v) {
			break
		}
		h.heap[i] = h.heap[child]
		h.indices[h.heap[i]] = i
		i = child
	}
	h.heap[i] = v
	h.indices[v] = i
}

// insert pushes v if absent.
func (h *varHeap) insert(v Var) {
	h.growTo(int(v) + 1)
	if h.inHeap(v) {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.percolateUp(len(h.heap) - 1)
}

// update re-sifts v after an activity change (no-op if absent).
func (h *varHeap) update(v Var) {
	if !h.inHeap(v) {
		return
	}
	i := h.indices[v]
	h.percolateUp(i)
	h.percolateDown(h.indices[v])
}

// removeMax pops the most active variable.
func (h *varHeap) removeMax() Var {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 0
		h.percolateDown(0)
	}
	return v
}
