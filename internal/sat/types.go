package sat

import "fmt"

// Var is a 0-based propositional variable index. It is 32-bit on
// purpose: literals are stored by the million in the clause arena and
// the watch lists, and halving the word size halves the cache traffic
// of the propagation loop.
type Var int32

// Lit is a literal: variable 2*v for the positive polarity, 2*v+1 for the
// negative. The zero Lit is the positive literal of variable 0; use
// LitUndef for "no literal".
type Lit int32

// LitUndef is the sentinel "no literal" value.
const LitUndef Lit = -1

// MkLit builds a literal from a variable and a sign (true = negated).
func MkLit(v Var, neg bool) Lit {
	if neg {
		return Lit(2*int(v) + 1)
	}
	return Lit(2 * int(v))
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return MkLit(v, false) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return MkLit(v, true) }

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal in DIMACS style ("3", "-7").
func (l Lit) String() string {
	if l == LitUndef {
		return "?"
	}
	if l.Neg() {
		return fmt.Sprintf("-%d", int(l.Var())+1)
	}
	return fmt.Sprintf("%d", int(l.Var())+1)
}

// LBool is a three-valued boolean: True, False, or Undef.
type LBool int8

// Three-valued constants. Undef is the zero value so fresh assignment
// vectors start unassigned.
const (
	Undef LBool = 0
	True  LBool = 1
	False LBool = -1
)

// Not returns the three-valued negation.
func (b LBool) Not() LBool { return -b }

// String renders the truth value.
func (b LBool) String() string {
	switch b {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "undef"
	}
}

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	StatusUnknown Status = iota // budget exhausted before an answer
	StatusSat
	StatusUnsat
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusSat:
		return "SAT"
	case StatusUnsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Stats aggregates solver counters, reported by Solver.Stats.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learnt       int64
	Deleted      int64
	// GlueLearnt counts learnt clauses with LBD ≤ 2 ("glue" clauses,
	// exempt from deletion).
	GlueLearnt int64
	// LBDSum is the sum of the LBD of every stored learnt clause;
	// LBDSum/Learnt is the mean glue level of the search.
	LBDSum int64
	// LBDHist buckets stored learnt clauses by LBD: index i counts
	// clauses with LBD i+1 for i < 7, and the last bucket counts LBD ≥ 8.
	LBDHist [8]int64
	// ArenaGCs counts compactions of the clause arena.
	ArenaGCs int64
}

// Add accumulates other into s, field by field — the aggregation the
// cube-and-conquer path uses to report collective effort.
func (s *Stats) Add(other Stats) {
	s.Conflicts += other.Conflicts
	s.Decisions += other.Decisions
	s.Propagations += other.Propagations
	s.Restarts += other.Restarts
	s.Learnt += other.Learnt
	s.Deleted += other.Deleted
	s.GlueLearnt += other.GlueLearnt
	s.LBDSum += other.LBDSum
	for i := range s.LBDHist {
		s.LBDHist[i] += other.LBDHist[i]
	}
	s.ArenaGCs += other.ArenaGCs
}

// Sub returns the field-by-field difference s - prev: the per-solve
// counters of an incremental session whose solver reports cumulative
// totals.
func (s Stats) Sub(prev Stats) Stats {
	d := s
	d.Conflicts -= prev.Conflicts
	d.Decisions -= prev.Decisions
	d.Propagations -= prev.Propagations
	d.Restarts -= prev.Restarts
	d.Learnt -= prev.Learnt
	d.Deleted -= prev.Deleted
	d.GlueLearnt -= prev.GlueLearnt
	d.LBDSum -= prev.LBDSum
	for i := range d.LBDHist {
		d.LBDHist[i] -= prev.LBDHist[i]
	}
	d.ArenaGCs -= prev.ArenaGCs
	return d
}

// MeanLBD returns the average LBD over stored learnt clauses (0 when
// none were learnt).
func (s Stats) MeanLBD() float64 {
	if s.Learnt == 0 {
		return 0
	}
	return float64(s.LBDSum) / float64(s.Learnt)
}
