package sat

import "fmt"

// Var is a 0-based propositional variable index.
type Var int

// Lit is a literal: variable 2*v for the positive polarity, 2*v+1 for the
// negative. The zero Lit is the positive literal of variable 0; use
// LitUndef for "no literal".
type Lit int

// LitUndef is the sentinel "no literal" value.
const LitUndef Lit = -1

// MkLit builds a literal from a variable and a sign (true = negated).
func MkLit(v Var, neg bool) Lit {
	if neg {
		return Lit(2*int(v) + 1)
	}
	return Lit(2 * int(v))
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return MkLit(v, false) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return MkLit(v, true) }

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal in DIMACS style ("3", "-7").
func (l Lit) String() string {
	if l == LitUndef {
		return "?"
	}
	if l.Neg() {
		return fmt.Sprintf("-%d", int(l.Var())+1)
	}
	return fmt.Sprintf("%d", int(l.Var())+1)
}

// LBool is a three-valued boolean: True, False, or Undef.
type LBool int8

// Three-valued constants. Undef is the zero value so fresh assignment
// vectors start unassigned.
const (
	Undef LBool = 0
	True  LBool = 1
	False LBool = -1
)

// Not returns the three-valued negation.
func (b LBool) Not() LBool { return -b }

// String renders the truth value.
func (b LBool) String() string {
	switch b {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "undef"
	}
}

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	StatusUnknown Status = iota // budget exhausted before an answer
	StatusSat
	StatusUnsat
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusSat:
		return "SAT"
	case StatusUnsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Stats aggregates solver counters, reported by Solver.Stats.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learnt       int64
	Deleted      int64
}
