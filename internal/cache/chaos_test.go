package cache

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/engine"
)

// TestDiskEnvelopeRoundTrip pins the checksum envelope format: wrapped
// payloads open back to themselves, and any flipped bit — header or
// payload — is detected.
func TestDiskEnvelopeRoundTrip(t *testing.T) {
	payload := []byte(`{"version":1,"status":"holds"}`)
	enveloped := diskEnvelope(payload)
	got, err := openDiskEnvelope(enveloped)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round trip: %q", got)
	}
	for bit := 0; bit < len(enveloped)*8; bit += 37 {
		bad := append([]byte(nil), enveloped...)
		bad[bit/8] ^= 1 << (bit % 8)
		if opened, err := openDiskEnvelope(bad); err == nil && string(opened) == string(payload) {
			// Flipping inside the magic prefix legitimately demotes the
			// file to a legacy passthrough; anything else must fail.
			if bit/8 >= len(diskMagic) {
				t.Fatalf("bit %d flip went undetected", bit)
			}
		}
	}
	if _, err := openDiskEnvelope([]byte(diskMagic + "short")); err == nil {
		t.Fatal("truncated header accepted")
	}
}

// TestLegacyDiskEntryStillReadable: pre-envelope files (bare result
// JSON) keep hitting — a format migration must not cold the fleet's
// disk tiers.
func TestLegacyDiskEntryStillReadable(t *testing.T) {
	dir := t.TempDir()
	legacy := res("legacy")
	payload, err := engine.EncodeResult(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "old.json"), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{Capacity: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("old")
	if !ok || got.Scenario != "legacy" {
		t.Fatalf("legacy entry: ok=%v res=%+v", ok, got)
	}
	if st := c.Stats(); st.DiskHits != 1 || st.CorruptEntries != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestFlippedBitOnDiskIsQuarantined corrupts a stored envelope the way
// a decaying disk would and requires the full degradation chain: miss,
// file deleted, counters up, and a recompute-and-rewrite restoring the
// entry.
func TestFlippedBitOnDiskIsQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Capacity: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("victim", res("good"))

	path := filepath.Join(dir, "victim.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x40 // flip one payload bit
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(Options{Capacity: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get("victim"); ok {
		t.Fatal("flipped-bit entry served as a hit")
	}
	if st := fresh.Stats(); st.CorruptEntries != 1 || st.DiskErrors != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file not deleted: %v", err)
	}
	// The recompute path rewrites a valid entry.
	fresh.Put("victim", res("recomputed"))
	if got, ok := fresh.Get("victim"); !ok || got.Scenario != "recomputed" {
		t.Fatalf("rewrite after quarantine: ok=%v res=%+v", ok, got)
	}
}

// TestChaosDiskWritesDegradeToRecompute is the cache half of the chaos
// acceptance: with every disk write mangled (flip=1), a restarted cache
// over the same directory must quarantine everything — misses and
// corruption counters, never a wrong or torn verdict.
func TestChaosDiskWritesDegradeToRecompute(t *testing.T) {
	dir := t.TempDir()
	in := chaos.New(chaos.Config{Seed: 11, Flip: 1})
	writer, err := New(Options{Capacity: 8, Dir: dir, Chaos: in})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"aaaa", "bbbb", "cccc", "dddd"}
	for _, k := range keys {
		writer.Put(k, res(k))
	}
	if in.Counts()["cache.disk/flip"] != uint64(len(keys)) {
		t.Fatalf("chaos counts %v, want %d disk flips", in.Counts(), len(keys))
	}

	// A clean restart over the poisoned directory: every Get must be a
	// quarantining miss. (The writer's own memory tier still hits — the
	// mangle is below it — which is also correct.)
	clean, err := New(Options{Capacity: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if got, ok := clean.Get(k); ok {
			t.Fatalf("mangled entry %q served: %+v", k, got)
		}
	}
	st := clean.Stats()
	if st.CorruptEntries != uint64(len(keys)) || st.Misses != uint64(len(keys)) {
		t.Fatalf("stats %+v, want %d quarantines", st, len(keys))
	}
	// Recompute refills the tier with valid entries.
	for _, k := range keys {
		clean.Put(k, res(k))
	}
	refilled, err := New(Options{Capacity: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if got, ok := refilled.Get(k); !ok || got.Scenario != k {
			t.Fatalf("refilled entry %q: ok=%v res=%+v", k, ok, got)
		}
	}
}
