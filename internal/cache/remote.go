package cache

import (
	"bytes"
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
)

// The remote/peer tier speaks a two-verb HTTP protocol over encoded
// Result documents, addressed by cache key:
//
//	GET  {base}/{key}  -> 200 + result document | 404 (miss)
//	PUT  {base}/{key}  -> 204 (stored)
//
// A cache with Options.RemoteURL set consults the peer after memory
// and disk both miss, and propagates every Put (asynchronously, via a
// bounded queue), so one node's conclusive verdict warms every cache
// pointed at the same peer. HTTPHandler serves the other side of the
// protocol from a cache's local tiers only — peers answer with what
// they have and never chain to their own remote, so cyclic peer
// topologies cannot recurse.
//
// Trust boundary: a cache key is the content address of the
// *question* (scenario + engine), not of the stored result, so the
// serving side cannot recompute it from a PUT body — whoever can
// reach the endpoint can store an arbitrary verdict under any key.
// The protocol is therefore for trusted fleet peers only: keep the
// endpoint off untrusted networks, and/or set a shared secret
// (Options.RemoteSecret on the dialing side, the secret argument of
// HTTPHandler on the serving side), carried in the X-Cache-Auth
// header and compared in constant time.

// remoteBodyLimit caps a served or fetched entry. Results are small
// (a few KiB with a counterexample trace); anything near the limit is
// corrupt or hostile.
const remoteBodyLimit = 16 << 20

// authHeader carries the shared secret of a secured peer protocol.
const authHeader = "X-Cache-Auth"

// checksumHeader carries the hex SHA-256 of the entry body on both
// protocol verbs. The dialing side verifies it on GET responses and
// the serving side on PUT bodies (when present — older peers omit it),
// so a bit flipped in transit degrades to a counted error and a
// recompute instead of decoding into a wrong cached verdict.
const checksumHeader = "X-Cache-Checksum"

// remotePutQueue bounds the async propagation backlog. A healthy peer
// drains it far faster than verification fills it; against a wedged
// peer it fills once and further propagations are dropped (counted in
// RemoteErrors) instead of stalling Put.
const remotePutQueue = 64

// keyOK reports whether key looks like a content address (hex SHA-256).
// The handler rejects anything else so a crafted key can never traverse
// the disk tier's directory.
func keyOK(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// flight coalesces concurrent remote fetches of one key: the first
// caller does the HTTP round trip, the rest wait for its answer.
type flight struct {
	wg  sync.WaitGroup
	res engine.Result
	ok  bool
}

// getRemote fetches key from the peer, single-flighted per key. Only
// the fetching caller counts the hit and promotes the entry into the
// local tiers (memory, and disk so the hit survives a restart);
// waiters just share the answer.
func (c *Cache) getRemote(key string) (engine.Result, bool) {
	c.flightMu.Lock()
	if f, ok := c.flights[key]; ok {
		c.flightMu.Unlock()
		f.wg.Wait()
		return f.res, f.ok
	}
	f := &flight{}
	f.wg.Add(1)
	c.flights[key] = f
	c.flightMu.Unlock()

	f.res, f.ok = c.fetchRemote(key)
	if f.ok {
		c.mu.Lock()
		c.stats.RemoteHits++
		c.insertLocked(key, f.res)
		c.mu.Unlock()
		c.persistDisk(key, f.res)
	}

	c.flightMu.Lock()
	delete(c.flights, key)
	c.flightMu.Unlock()
	f.wg.Done()
	return f.res, f.ok
}

// fetchRemote is one GET round trip, bounded by the per-request
// remote timeout so a wedged peer can only ever cost that much before
// the Get degrades. Network failures, timeouts, checksum mismatches,
// and malformed bodies all degrade to a miss (counted in
// RemoteErrors); the entry is simply recomputed locally.
func (c *Cache) fetchRemote(key string) (engine.Result, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), c.remoteTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.remoteURL+"/"+key, nil)
	if err != nil {
		c.countRemoteError()
		return engine.Result{}, false
	}
	if c.remoteSecret != "" {
		req.Header.Set(authHeader, c.remoteSecret)
	}
	resp, err := c.remoteClient.Do(req)
	if err != nil {
		c.countRemoteError()
		return engine.Result{}, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return engine.Result{}, false
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, remoteBodyLimit))
		c.countRemoteError()
		return engine.Result{}, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, remoteBodyLimit))
	if err != nil {
		c.countRemoteError()
		return engine.Result{}, false
	}
	if want := resp.Header.Get(checksumHeader); want != "" {
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != want {
			c.countRemoteError()
			return engine.Result{}, false
		}
	}
	res, err := engine.DecodeResult(data)
	if err != nil {
		c.countRemoteError()
		return engine.Result{}, false
	}
	return res, true
}

// remotePut is one queued propagation.
type remotePut struct {
	key string
	res engine.Result
}

// enqueueRemotePut hands one Put to the background sender without
// blocking: the queue either takes it or the entry is dropped and
// counted. Verification latency is thereby independent of peer health.
func (c *Cache) enqueueRemotePut(key string, res engine.Result) {
	c.putWG.Add(1)
	select {
	case c.putCh <- remotePut{key: key, res: res}:
	default:
		c.putWG.Done()
		c.countRemoteError()
	}
}

// remotePutSender drains the propagation queue for the life of the
// cache, one blocking round trip at a time.
func (c *Cache) remotePutSender() {
	for p := range c.putCh {
		c.storeRemote(p.key, p.res)
		c.putWG.Done()
	}
}

// WaitRemotePuts blocks until every propagation queued so far has been
// attempted. Production code never needs it — propagation is
// fire-and-forget — but tests (and orderly shutdown) use it to observe
// the peer in a settled state.
func (c *Cache) WaitRemotePuts() {
	c.putWG.Wait()
}

// storeRemote propagates one Put to the peer, bounded by the
// per-request remote timeout.
func (c *Cache) storeRemote(key string, res engine.Result) {
	data, err := engine.EncodeResult(&res)
	if err != nil {
		c.countRemoteError()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.remoteTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.remoteURL+"/"+key, bytes.NewReader(data))
	if err != nil {
		c.countRemoteError()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	sum := sha256.Sum256(data)
	req.Header.Set(checksumHeader, hex.EncodeToString(sum[:]))
	if c.remoteSecret != "" {
		req.Header.Set(authHeader, c.remoteSecret)
	}
	resp, err := c.remoteClient.Do(req)
	if err != nil {
		c.countRemoteError()
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, remoteBodyLimit))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		c.countRemoteError()
		return
	}
	c.mu.Lock()
	c.stats.RemotePuts++
	c.mu.Unlock()
}

func (c *Cache) countRemoteError() {
	c.mu.Lock()
	c.stats.RemoteErrors++
	c.mu.Unlock()
}

// HTTPHandler serves cache entries from c's local tiers (memory and
// disk) under the two-verb protocol above; mount it wherever the peer
// URL should live, e.g.
//
//	mux.Handle("/cache/entry/", http.StripPrefix("/cache/entry", cache.HTTPHandler(c, secret)))
//
// and point other nodes' Options.RemoteURL at ".../cache/entry". The
// handler never consults c's own remote tier, so peers answer from
// what they hold and chains of peers cannot loop.
//
// A non-empty secret requires every request to carry it in the
// X-Cache-Auth header (rejected 401 otherwise); an empty secret serves
// openly and is only appropriate on a network where every reachable
// client is a trusted peer — PUT bodies cannot be validated against
// their key, so an open endpoint lets any client forge cached
// verdicts (see the trust-boundary note at the top of this file).
func HTTPHandler(c *Cache, secret string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if secret != "" && subtle.ConstantTimeCompare([]byte(r.Header.Get(authHeader)), []byte(secret)) != 1 {
			http.Error(w, `{"error":"missing or wrong `+authHeader+`"}`, http.StatusUnauthorized)
			return
		}
		key := strings.TrimPrefix(r.URL.Path, "/")
		if !keyOK(key) {
			http.Error(w, `{"error":"bad cache key"}`, http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			res, ok := c.getLocal(key)
			if !ok {
				http.Error(w, `{"error":"miss"}`, http.StatusNotFound)
				return
			}
			data, err := engine.EncodeResult(&res)
			if err != nil {
				http.Error(w, `{"error":"unencodable entry"}`, http.StatusInternalServerError)
				return
			}
			sum := sha256.Sum256(data)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set(checksumHeader, hex.EncodeToString(sum[:]))
			w.Write(data)
		case http.MethodPut:
			data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, remoteBodyLimit))
			if err != nil {
				status := http.StatusBadRequest
				var tooLarge *http.MaxBytesError
				if errors.As(err, &tooLarge) {
					status = http.StatusRequestEntityTooLarge
				}
				http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), status)
				return
			}
			if want := r.Header.Get(checksumHeader); want != "" {
				sum := sha256.Sum256(data)
				if hex.EncodeToString(sum[:]) != want {
					http.Error(w, `{"error":"body checksum mismatch"}`, http.StatusBadRequest)
					return
				}
			}
			res, err := engine.DecodeResult(data)
			if err != nil {
				http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
				return
			}
			c.putLocal(key, res)
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, `{"error":"GET or PUT"}`, http.StatusMethodNotAllowed)
		}
	})
}

// defaultRemoteClient bounds every peer round trip: a slow or wedged
// peer must degrade to a local miss, not stall verification.
func defaultRemoteClient() *http.Client {
	return &http.Client{Timeout: 10 * time.Second}
}
