package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/engine"
)

func res(name string) engine.Result {
	return engine.Result{Index: -1, Scenario: name, Engine: "explicit", Status: engine.StatusHolds}
}

func TestHitMiss(t *testing.T) {
	c, err := New(Options{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("k1", res("a"))
	got, ok := c.Get("k1")
	if !ok || got.Scenario != "a" {
		t.Fatalf("get after put: ok=%v res=%+v", ok, got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New(Options{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", res("a"))
	c.Put("b", res("b"))
	// Touch a so b becomes the least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", res("c"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used a evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("newest c evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPutOverwrites(t *testing.T) {
	c, err := New(Options{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k", res("old"))
	c.Put("k", res("new"))
	got, ok := c.Get("k")
	if !ok || got.Scenario != "new" {
		t.Fatalf("overwrite lost: %+v", got)
	}
	if st := c.Stats(); st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestUnboundedCapacity(t *testing.T) {
	c, err := New(Options{Capacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		c.Put(fmt.Sprintf("k%d", i), res("x"))
	}
	if st := c.Stats(); st.Entries != 10000 || st.Evictions != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Options{Capacity: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1.Put("deadbeef", res("persisted"))

	// A fresh cache over the same directory — a service restart — must
	// serve the result from disk and promote it to memory.
	c2, err := New(Options{Capacity: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("deadbeef")
	if !ok || got.Scenario != "persisted" {
		t.Fatalf("disk miss after restart: ok=%v res=%+v", ok, got)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Second Get is a memory hit.
	if _, ok := c2.Get("deadbeef"); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.Hits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDiskEvictionKeepsFile(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Capacity: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k1", res("one"))
	c.Put("k2", res("two")) // evicts k1 from memory only
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("evicted entry lost from the durable tier")
	}
	if st := c.Stats(); st.DiskHits != 1 || st.Evictions < 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCorruptDiskFileIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Capacity: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("bad"); ok {
		t.Fatal("corrupt file served as a hit")
	}
	if st := c.Stats(); st.DiskErrors != 1 || st.Misses != 1 || st.CorruptEntries != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The corrupt entry is quarantined: the file is deleted, so the next
	// Get is a clean miss, not another decode failure.
	if _, err := os.Stat(filepath.Join(dir, "bad.json")); !os.IsNotExist(err) {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	if _, ok := c.Get("bad"); ok {
		t.Fatal("quarantined key hit")
	}
	if st := c.Stats(); st.DiskErrors != 1 || st.Misses != 2 || st.CorruptEntries != 1 {
		t.Fatalf("stats after quarantine %+v", st)
	}
}

// TestDiskConcurrentWritersSameKey races many writers of one key
// through the atomic-rename path: whatever interleaving wins, the file
// under the key must always be one complete, decodable result — never
// a torn mix — and the stats must add up.
func TestDiskConcurrentWritersSameKey(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Capacity: 16, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const writers, rounds = 8, 50
	names := map[string]bool{}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		name := fmt.Sprintf("writer-%d", w)
		names[name] = true
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.Put("contested", res(name))
			}
		}()
	}
	wg.Wait()

	st := c.Stats()
	if st.Puts != writers*rounds {
		t.Fatalf("puts %d, want %d", st.Puts, writers*rounds)
	}
	if st.DiskErrors != 0 {
		t.Fatalf("atomic-rename races surfaced as disk errors: %+v", st)
	}
	// A fresh cache over the directory sees one intact winner.
	fresh, err := New(Options{Capacity: 16, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := fresh.Get("contested")
	if !ok || !names[got.Scenario] {
		t.Fatalf("disk entry after race: ok=%v res=%+v", ok, got)
	}
	if st := fresh.Stats(); st.DiskErrors != 0 || st.DiskHits != 1 {
		t.Fatalf("fresh stats %+v", st)
	}
	// No temp files leaked by losing renames.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if f.Name() != "contested.json" {
			t.Fatalf("leftover file %q after concurrent writes", f.Name())
		}
	}
}

// TestDiskConcurrentReadersAndWriters overlaps readers with writers of
// the same key: because replacement is by rename, every read observes
// some complete value, and the hit/miss counters stay consistent with
// the number of Gets issued.
func TestDiskConcurrentReadersAndWriters(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Capacity: 1, Dir: dir}) // capacity 1 forces disk traffic
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k0", res("seed0"))
	c.Put("k1", res("seed1")) // evicts k0 from memory

	const readers, writers, rounds = 4, 4, 100
	var wg sync.WaitGroup
	var gets, hits uint64
	var mu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.Put(fmt.Sprintf("k%d", i%2), res(fmt.Sprintf("w%d-%d", w, i)))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			localGets, localHits := uint64(0), uint64(0)
			for i := 0; i < rounds; i++ {
				localGets++
				if got, ok := c.Get(fmt.Sprintf("k%d", i%2)); ok {
					localHits++
					if got.Scenario == "" {
						t.Error("torn read: empty result")
					}
				}
			}
			mu.Lock()
			gets += localGets
			hits += localHits
			mu.Unlock()
		}()
	}
	wg.Wait()

	st := c.Stats()
	if st.DiskErrors != 0 {
		t.Fatalf("disk errors under concurrent read/write: %+v", st)
	}
	// Both keys are always present in some tier, so every Get hit.
	if hits != gets {
		t.Fatalf("%d of %d gets hit under concurrent writers", hits, gets)
	}
	if st.Hits+st.DiskHits+st.RemoteHits+st.Misses != gets {
		t.Fatalf("tier counters %+v do not add up to %d gets", st, gets)
	}
	if st.Puts != 2+writers*rounds {
		t.Fatalf("puts %d, want %d", st.Puts, 2+writers*rounds)
	}
}

// TestConcurrentAccess hammers one cache from many goroutines; the race
// detector (CI runs the suite with -race) guards the locking.
func TestConcurrentAccess(t *testing.T) {
	c, err := New(Options{Capacity: 32, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%64)
				if _, ok := c.Get(key); !ok {
					c.Put(key, res(key))
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("cache empty after concurrent load")
	}
}
