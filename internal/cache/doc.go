// Package cache is the content-addressed verification result cache:
// it maps the canonical hash of a (scenario, engine) pair — see
// engine.CacheKey — to the engine's Result, so repeated sweeps skip
// scenarios that are already verified.
//
// The cache is an in-memory LRU with an optional on-disk persistence
// layer and an optional remote/peer HTTP tier. Memory answers hot
// lookups; when a directory is configured, every stored result is also
// written there (one canonical-JSON file per key, written atomically
// via rename) and memory misses fall back to disk, so a service restart
// keeps its verified corpus. When a peer URL is configured, misses in
// both local tiers are fetched from the peer (single-flighted per key,
// so a thundering herd of identical misses costs one round trip) and
// every Put is propagated asynchronously through a bounded queue that
// drops rather than blocks — one fleet node's conclusive verdict warms
// every node pointed at the same peer, and a wedged peer never stalls
// verification. HTTPHandler serves the peer side of that protocol from
// a cache's local tiers, optionally behind a shared secret; the
// protocol trusts its clients (a stored result cannot be validated
// against its key), so expose it to fleet peers only. LRU eviction
// applies to memory only — disk is the durable tier and is never
// garbage-collected by this package; remote failures degrade to
// misses, never to errors.
//
// Caching is sound because everything around it is deterministic: the
// engines produce the same Result for the same (Scenario, Engine)
// value, and the codec's canonical encoding gives equal scenarios equal
// keys. Only conclusive results are stored by the Runner, so a cached
// verdict is exactly the verdict re-verification would produce.
//
// All methods are safe for concurrent use; the Runner's worker pool
// hits one shared Cache. Results are returned by value, but the
// counterexample Trace inside a Result is a shared pointer — treat
// cached traces as read-only.
package cache
