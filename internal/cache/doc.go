// Package cache is the content-addressed verification result cache:
// it maps the canonical hash of a (scenario, engine) pair — see
// engine.CacheKey — to the engine's Result, so repeated sweeps skip
// scenarios that are already verified.
//
// The cache is an in-memory LRU with an optional on-disk persistence
// layer. Memory answers hot lookups; when a directory is configured,
// every stored result is also written there (one canonical-JSON file
// per key, written atomically via rename) and memory misses fall back
// to disk, so a service restart keeps its verified corpus. LRU eviction
// applies to memory only — disk is the durable tier and is never
// garbage-collected by this package.
//
// Caching is sound because everything around it is deterministic: the
// engines produce the same Result for the same (Scenario, Engine)
// value, and the codec's canonical encoding gives equal scenarios equal
// keys. Only conclusive results are stored by the Runner, so a cached
// verdict is exactly the verdict re-verification would produce.
//
// All methods are safe for concurrent use; the Runner's worker pool
// hits one shared Cache. Results are returned by value, but the
// counterexample Trace inside a Result is a shared pointer — treat
// cached traces as read-only.
package cache
