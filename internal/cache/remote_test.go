package cache

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
)

// peerKey is a syntactically valid content address (64 hex chars).
func peerKey(b byte) string {
	return strings.Repeat(string([]byte{'a' + b%6}), 64)
}

// peer spins up a cache served over the entry protocol, the shape every
// fleet node uses.
func peer(t *testing.T) (*Cache, *httptest.Server, *atomic.Int64) {
	t.Helper()
	shared, err := New(Options{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	var gets atomic.Int64
	h := HTTPHandler(shared)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			gets.Add(1)
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return shared, srv, &gets
}

func TestRemoteTierHitAndPromotion(t *testing.T) {
	shared, srv, _ := peer(t)
	key := peerKey(0)
	shared.Put(key, res("warm"))

	local, err := New(Options{Capacity: 8, Dir: t.TempDir(), RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := local.Get(key)
	if !ok || got.Scenario != "warm" {
		t.Fatalf("remote get: ok=%v res=%+v", ok, got)
	}
	st := local.Stats()
	if st.RemoteHits != 1 || st.Misses != 0 {
		t.Fatalf("stats %+v", st)
	}
	// The hit was promoted into memory: the next Get is local.
	if _, ok := local.Get(key); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := local.Stats(); st.Hits != 1 || st.RemoteHits != 1 {
		t.Fatalf("stats after promotion %+v", st)
	}
	// ... and onto disk: a restarted cache with no remote still has it.
	reborn, err := New(Options{Capacity: 8, Dir: local.dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reborn.Get(key); !ok {
		t.Fatal("remote hit did not persist to the disk tier")
	}
}

func TestRemotePutPropagates(t *testing.T) {
	shared, srv, _ := peer(t)
	a, err := New(Options{Capacity: 8, RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Capacity: 8, RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	key := peerKey(1)
	a.Put(key, res("from-a"))
	if st := a.Stats(); st.RemotePuts != 1 || st.RemoteErrors != 0 {
		t.Fatalf("put stats %+v", st)
	}
	if _, ok := shared.getLocal(key); !ok {
		t.Fatal("put did not reach the peer")
	}
	// Node b was never told about the key, but the shared tier warms it.
	got, ok := b.Get(key)
	if !ok || got.Scenario != "from-a" {
		t.Fatalf("b missed the fleet-warmed entry: ok=%v res=%+v", ok, got)
	}
	if st := b.Stats(); st.RemoteHits != 1 {
		t.Fatalf("b stats %+v", st)
	}
}

// TestRemoteSingleFlight pins the miss-coalescing contract: concurrent
// Gets of one cold key must cost one peer round trip, not N.
func TestRemoteSingleFlight(t *testing.T) {
	shared, srv, gets := peer(t)
	key := peerKey(2)
	shared.Put(key, res("flock"))

	local, err := New(Options{Capacity: 8, RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	var hits atomic.Int64
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, ok := local.Get(key); ok {
				hits.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if hits.Load() != n {
		t.Fatalf("%d of %d concurrent gets hit", hits.Load(), n)
	}
	// All n callers raced the flight; at most a handful can slip past
	// the memory tier before the first fetch promotes the entry, and the
	// single-flight collapses those to one round trip each "wave". The
	// hard bound we pin: strictly fewer fetches than callers, and at
	// least one.
	if g := gets.Load(); g < 1 || g >= n {
		t.Fatalf("%d peer round trips for %d coalesced gets", g, n)
	}
}

func TestRemoteMissAndDownPeerDegrade(t *testing.T) {
	_, srv, _ := peer(t)
	local, err := New(Options{Capacity: 8, RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := local.Get(peerKey(3)); ok {
		t.Fatal("hit on a cold fleet")
	}
	if st := local.Stats(); st.Misses != 1 || st.RemoteErrors != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Kill the peer: Gets and Puts degrade to the local tiers and count
	// errors instead of failing.
	srv.Close()
	if _, ok := local.Get(peerKey(4)); ok {
		t.Fatal("hit from a dead peer")
	}
	local.Put(peerKey(4), res("local-only"))
	if _, ok := local.Get(peerKey(4)); !ok {
		t.Fatal("local tier lost the entry")
	}
	st := local.Stats()
	if st.RemoteErrors < 2 || st.RemotePuts != 0 {
		t.Fatalf("degraded stats %+v", st)
	}
}

func TestHTTPHandlerRejectsBadRequests(t *testing.T) {
	shared, err := New(Options{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(HTTPHandler(shared))
	t.Cleanup(srv.Close)

	for name, tc := range map[string]struct {
		method, path, body string
		want               int
	}{
		"traversal-key":  {http.MethodGet, "/../../etc/passwd", "", http.StatusBadRequest},
		"short-key":      {http.MethodGet, "/abc123", "", http.StatusBadRequest},
		"uppercase-key":  {http.MethodGet, "/" + strings.Repeat("A", 64), "", http.StatusBadRequest},
		"miss":           {http.MethodGet, "/" + peerKey(0), "", http.StatusNotFound},
		"bad-put-body":   {http.MethodPut, "/" + peerKey(0), "{not a result", http.StatusBadRequest},
		"delete":         {http.MethodDelete, "/" + peerKey(0), "", http.StatusMethodNotAllowed},
		"alien-put-body": {http.MethodPut, "/" + peerKey(0), `{"version":9}`, http.StatusBadRequest},
	} {
		t.Run(name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
	if got := shared.Len(); got != 0 {
		t.Fatalf("rejected requests stored %d entries", got)
	}
}

// TestRemotePutRoundTripsVerdict pins that a result survives the wire:
// what one node stores is what another decodes, status and all.
func TestRemotePutRoundTripsVerdict(t *testing.T) {
	_, srv, _ := peer(t)
	a, err := New(Options{Capacity: 8, RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Capacity: 8, RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	key := peerKey(5)
	want := engine.Result{Index: -1, Scenario: "wired", Engine: "explicit", Status: engine.StatusViolated}
	a.Put(key, want)
	got, ok := b.Get(key)
	if !ok || got.Status != want.Status || got.Scenario != want.Scenario || got.Engine != want.Engine {
		t.Fatalf("round trip: ok=%v got=%+v", ok, got)
	}
}
