package cache

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// peerKey is a syntactically valid content address (64 hex chars).
func peerKey(b byte) string {
	return strings.Repeat(string([]byte{'a' + b%6}), 64)
}

// peer spins up a cache served over the entry protocol, the shape every
// fleet node uses.
func peer(t *testing.T) (*Cache, *httptest.Server, *atomic.Int64) {
	t.Helper()
	shared, err := New(Options{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	var gets atomic.Int64
	h := HTTPHandler(shared, "")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			gets.Add(1)
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return shared, srv, &gets
}

func TestRemoteTierHitAndPromotion(t *testing.T) {
	shared, srv, _ := peer(t)
	key := peerKey(0)
	shared.Put(key, res("warm"))

	local, err := New(Options{Capacity: 8, Dir: t.TempDir(), RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := local.Get(key)
	if !ok || got.Scenario != "warm" {
		t.Fatalf("remote get: ok=%v res=%+v", ok, got)
	}
	st := local.Stats()
	if st.RemoteHits != 1 || st.Misses != 0 {
		t.Fatalf("stats %+v", st)
	}
	// The hit was promoted into memory: the next Get is local.
	if _, ok := local.Get(key); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := local.Stats(); st.Hits != 1 || st.RemoteHits != 1 {
		t.Fatalf("stats after promotion %+v", st)
	}
	// ... and onto disk: a restarted cache with no remote still has it.
	reborn, err := New(Options{Capacity: 8, Dir: local.dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reborn.Get(key); !ok {
		t.Fatal("remote hit did not persist to the disk tier")
	}
}

func TestRemotePutPropagates(t *testing.T) {
	shared, srv, _ := peer(t)
	a, err := New(Options{Capacity: 8, RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Capacity: 8, RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	key := peerKey(1)
	a.Put(key, res("from-a"))
	a.WaitRemotePuts() // propagation is async; settle before asserting
	if st := a.Stats(); st.RemotePuts != 1 || st.RemoteErrors != 0 {
		t.Fatalf("put stats %+v", st)
	}
	if _, ok := shared.getLocal(key); !ok {
		t.Fatal("put did not reach the peer")
	}
	// Node b was never told about the key, but the shared tier warms it.
	got, ok := b.Get(key)
	if !ok || got.Scenario != "from-a" {
		t.Fatalf("b missed the fleet-warmed entry: ok=%v res=%+v", ok, got)
	}
	if st := b.Stats(); st.RemoteHits != 1 {
		t.Fatalf("b stats %+v", st)
	}
}

// TestRemoteSingleFlight pins the miss-coalescing contract: concurrent
// Gets of one cold key must cost one peer round trip, not N.
func TestRemoteSingleFlight(t *testing.T) {
	shared, srv, gets := peer(t)
	key := peerKey(2)
	shared.Put(key, res("flock"))

	local, err := New(Options{Capacity: 8, RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	var hits atomic.Int64
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, ok := local.Get(key); ok {
				hits.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if hits.Load() != n {
		t.Fatalf("%d of %d concurrent gets hit", hits.Load(), n)
	}
	// All n callers raced the flight; at most a handful can slip past
	// the memory tier before the first fetch promotes the entry, and the
	// single-flight collapses those to one round trip each "wave". The
	// hard bound we pin: strictly fewer fetches than callers, and at
	// least one.
	if g := gets.Load(); g < 1 || g >= n {
		t.Fatalf("%d peer round trips for %d coalesced gets", g, n)
	}
}

func TestRemoteMissAndDownPeerDegrade(t *testing.T) {
	_, srv, _ := peer(t)
	local, err := New(Options{Capacity: 8, RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := local.Get(peerKey(3)); ok {
		t.Fatal("hit on a cold fleet")
	}
	if st := local.Stats(); st.Misses != 1 || st.RemoteErrors != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Kill the peer: Gets and Puts degrade to the local tiers and count
	// errors instead of failing.
	srv.Close()
	if _, ok := local.Get(peerKey(4)); ok {
		t.Fatal("hit from a dead peer")
	}
	local.Put(peerKey(4), res("local-only"))
	if _, ok := local.Get(peerKey(4)); !ok {
		t.Fatal("local tier lost the entry")
	}
	local.WaitRemotePuts()
	st := local.Stats()
	if st.RemoteErrors < 2 || st.RemotePuts != 0 {
		t.Fatalf("degraded stats %+v", st)
	}
}

func TestHTTPHandlerRejectsBadRequests(t *testing.T) {
	shared, err := New(Options{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(HTTPHandler(shared, ""))
	t.Cleanup(srv.Close)

	for name, tc := range map[string]struct {
		method, path, body string
		want               int
	}{
		"traversal-key":  {http.MethodGet, "/../../etc/passwd", "", http.StatusBadRequest},
		"short-key":      {http.MethodGet, "/abc123", "", http.StatusBadRequest},
		"uppercase-key":  {http.MethodGet, "/" + strings.Repeat("A", 64), "", http.StatusBadRequest},
		"miss":           {http.MethodGet, "/" + peerKey(0), "", http.StatusNotFound},
		"bad-put-body":   {http.MethodPut, "/" + peerKey(0), "{not a result", http.StatusBadRequest},
		"delete":         {http.MethodDelete, "/" + peerKey(0), "", http.StatusMethodNotAllowed},
		"alien-put-body": {http.MethodPut, "/" + peerKey(0), `{"version":9}`, http.StatusBadRequest},
	} {
		t.Run(name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
	if got := shared.Len(); got != 0 {
		t.Fatalf("rejected requests stored %d entries", got)
	}
}

// TestHTTPHandlerSharedSecret pins the peer-protocol trust boundary:
// with a secret configured, requests without the right X-Cache-Auth are
// 401 and store nothing, while a client built with the matching
// RemoteSecret round-trips normally.
func TestHTTPHandlerSharedSecret(t *testing.T) {
	shared, err := New(Options{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(HTTPHandler(shared, "hunter2"))
	t.Cleanup(srv.Close)
	key := peerKey(0)

	warm, err := New(Options{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	warm.Put(key, res("forged"))
	doc, err := engine.EncodeResult(&engine.Result{Scenario: "forged", Engine: "explicit", Status: engine.StatusHolds})
	if err != nil {
		t.Fatal(err)
	}
	for name, hdr := range map[string]string{"missing": "", "wrong": "hunter3"} {
		t.Run(name, func(t *testing.T) {
			for _, method := range []string{http.MethodGet, http.MethodPut} {
				req, err := http.NewRequest(method, srv.URL+"/"+key, strings.NewReader(string(doc)))
				if err != nil {
					t.Fatal(err)
				}
				if hdr != "" {
					req.Header.Set(authHeader, hdr)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusUnauthorized {
					t.Fatalf("%s without secret: status %d, want 401", method, resp.StatusCode)
				}
			}
		})
	}
	if shared.Len() != 0 {
		t.Fatal("unauthorized PUT stored an entry")
	}

	// A client holding the secret uses the protocol normally.
	authed, err := New(Options{Capacity: 8, RemoteURL: srv.URL, RemoteSecret: "hunter2"})
	if err != nil {
		t.Fatal(err)
	}
	authed.Put(key, res("legit"))
	authed.WaitRemotePuts()
	if st := authed.Stats(); st.RemotePuts != 1 || st.RemoteErrors != 0 {
		t.Fatalf("authed put stats %+v", st)
	}
	fresh, err := New(Options{Capacity: 8, RemoteURL: srv.URL, RemoteSecret: "hunter2"})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := fresh.Get(key); !ok || got.Scenario != "legit" {
		t.Fatalf("authed get: ok=%v res=%+v", ok, got)
	}
}

// TestRemotePutNeverBlocksOnWedgedPeer pins the hot-path contract from
// docs/OPERATIONS.md: verification never blocks on cache availability.
// Against a peer that accepts connections but never answers, Put must
// return immediately, and once the propagation queue is full further
// entries are dropped and counted rather than queued unboundedly.
func TestRemotePutNeverBlocksOnWedgedPeer(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // wedged: holds every request open until the test ends
	}))
	t.Cleanup(func() { close(release); srv.Close() })

	local, err := New(Options{Capacity: 2 * remotePutQueue, RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	// One put wedges the sender, remotePutQueue more fill the queue, and
	// everything past that must be dropped on the spot.
	const extra = 3
	start := time.Now()
	for i := 0; i < 1+remotePutQueue+extra; i++ {
		local.Put(peerKey(byte(i))[:63]+string([]byte{'0' + byte(i%10)}), res("burst"))
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("puts against a wedged peer took %v", d)
	}
	// The sender holds at most one in-flight propagation and the queue
	// at most remotePutQueue, so at least `extra` of the burst were
	// dropped — and drops are counted at enqueue time, synchronously.
	if st := local.Stats(); st.RemoteErrors < extra || st.RemotePuts != 0 {
		t.Fatalf("overflow stats %+v, want >= %d drops and no acked puts", st, extra)
	}
}

// TestRemotePutRoundTripsVerdict pins that a result survives the wire:
// what one node stores is what another decodes, status and all.
func TestRemotePutRoundTripsVerdict(t *testing.T) {
	_, srv, _ := peer(t)
	a, err := New(Options{Capacity: 8, RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Capacity: 8, RemoteURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	key := peerKey(5)
	want := engine.Result{Index: -1, Scenario: "wired", Engine: "explicit", Status: engine.StatusViolated}
	a.Put(key, want)
	a.WaitRemotePuts()
	got, ok := b.Get(key)
	if !ok || got.Status != want.Status || got.Scenario != want.Scenario || got.Engine != want.Engine {
		t.Fatalf("round trip: ok=%v got=%+v", ok, got)
	}
}
