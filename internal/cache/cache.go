package cache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/engine"
)

// Options configures a Cache.
type Options struct {
	// Capacity bounds the in-memory entry count; at most Capacity
	// results are held before least-recently-used eviction. 0 defaults
	// to 4096; negative means unbounded.
	Capacity int
	// Dir, when non-empty, enables the on-disk persistence layer in
	// that directory (created if absent).
	Dir string
	// RemoteURL, when non-empty, enables the remote/peer tier: Gets
	// that miss both memory and disk are fetched from the peer cache
	// served at this URL (see HTTPHandler), single-flighted per key,
	// and every Put is propagated — asynchronously, off the
	// verification hot path — so one node's conclusive verdict warms
	// the whole fleet. Remote failures degrade to misses.
	RemoteURL string
	// RemoteSecret, when non-empty, is sent with every peer request in
	// the X-Cache-Auth header; it must match the secret the peer's
	// HTTPHandler was built with.
	RemoteSecret string
	// RemoteClient overrides the HTTP client for the remote tier
	// (default: a client with a 10-second timeout).
	RemoteClient *http.Client
	// RemoteTimeout bounds each individual peer round trip — Get
	// fetches and Put propagations alike — via a per-request context
	// deadline, independent of the client's own timeout, so a wedged
	// peer degrades to a counted miss instead of holding a fetch for
	// the client default. 0 defaults to 5 seconds.
	RemoteTimeout time.Duration
	// Chaos, when non-nil, arms deterministic fault injection on the
	// cache's infrastructure edges: disk-tier writes pass through
	// Injector.Mangle (site "cache.disk") and peer round trips through
	// Injector.Transport (site "cache.peer"). The checksum envelope and
	// quarantine-on-corruption paths exist so that none of these
	// injections can ever surface as a wrong cached verdict.
	Chaos *chaos.Injector
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Entries and Capacity describe the in-memory tier.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Hits counts Gets answered from memory, DiskHits those answered
	// from the persistence layer, RemoteHits those answered by the
	// peer tier, Misses those answered by none.
	Hits       uint64 `json:"hits"`
	DiskHits   uint64 `json:"disk_hits"`
	RemoteHits uint64 `json:"remote_hits"`
	Misses     uint64 `json:"misses"`
	// Puts counts stores, RemotePuts those successfully propagated to
	// the peer tier, Evictions LRU removals from memory.
	Puts       uint64 `json:"puts"`
	RemotePuts uint64 `json:"remote_puts"`
	Evictions  uint64 `json:"evictions"`
	// DiskErrors counts persistence failures, RemoteErrors peer-tier
	// failures — network errors, bad responses, and propagations
	// dropped because the async put queue was full (the cache degrades
	// to the surviving tiers rather than failing the verification).
	DiskErrors   uint64 `json:"disk_errors"`
	RemoteErrors uint64 `json:"remote_errors"`
	// CorruptEntries counts disk-tier files quarantined on Get because
	// their checksum envelope or payload failed validation — each one
	// was deleted and served as a miss (also counted in DiskErrors), so
	// corrupt bytes degrade to recompute, never to a wrong verdict.
	CorruptEntries uint64 `json:"corrupt_entries"`
}

// Cache is a content-addressed Result store implementing
// engine.ResultCache.
type Cache struct {
	capacity      int
	dir           string
	remoteURL     string
	remoteSecret  string
	remoteClient  *http.Client
	remoteTimeout time.Duration
	chaos         *chaos.Injector

	mu    sync.Mutex
	ll    *list.List // most recent at front; values are *entry
	idx   map[string]*list.Element
	stats Stats

	// flights single-flights remote fetches per key (remote.go).
	flightMu sync.Mutex
	flights  map[string]*flight

	// putCh feeds the background sender that propagates Puts to the
	// peer; putWG tracks queued-but-unsent propagations (remote.go).
	putCh chan remotePut
	putWG sync.WaitGroup
}

type entry struct {
	key string
	res engine.Result
}

// New builds a cache. With a Dir set, the directory is created
// immediately so configuration errors surface at startup rather than on
// the first Put.
func New(o Options) (*Cache, error) {
	if o.Capacity == 0 {
		o.Capacity = 4096
	}
	if o.Dir != "" {
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	client := o.RemoteClient
	if client == nil {
		client = defaultRemoteClient()
	}
	if o.Chaos != nil {
		// Wrap a copy: the caller's client must not inherit the fault
		// injection.
		client = &http.Client{
			Transport:     o.Chaos.Transport("cache.peer", client.Transport),
			CheckRedirect: client.CheckRedirect,
			Jar:           client.Jar,
			Timeout:       client.Timeout,
		}
	}
	if o.RemoteTimeout <= 0 {
		o.RemoteTimeout = 5 * time.Second
	}
	c := &Cache{
		capacity:      o.Capacity,
		dir:           o.Dir,
		remoteURL:     strings.TrimSuffix(o.RemoteURL, "/"),
		remoteSecret:  o.RemoteSecret,
		remoteClient:  client,
		remoteTimeout: o.RemoteTimeout,
		chaos:         o.Chaos,
		ll:            list.New(),
		idx:           map[string]*list.Element{},
		flights:       map[string]*flight{},
	}
	if c.remoteURL != "" {
		c.putCh = make(chan remotePut, remotePutQueue)
		go c.remotePutSender()
	}
	return c, nil
}

// Get returns the cached result for key. Tiers are consulted in
// latency order — memory, then disk, then the remote peer — and a hit
// in a lower tier is promoted into the tiers above it.
func (c *Cache) Get(key string) (engine.Result, bool) {
	if res, ok := c.getLocal(key); ok {
		return res, true
	}
	if c.remoteURL != "" {
		// getRemote promotes a hit into the local tiers itself — the
		// fetching caller only, so coalesced waiters don't repeat the
		// insert and disk write.
		if res, ok := c.getRemote(key); ok {
			return res, true
		}
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return engine.Result{}, false
}

// getLocal consults the memory and disk tiers only; the peer HTTP
// handler serves from it so chained peers can never recurse. Note that
// a full miss here is not counted in Misses — Get owns that counter.
func (c *Cache) getLocal(key string) (engine.Result, bool) {
	c.mu.Lock()
	if el, ok := c.idx[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		res := el.Value.(*entry).res
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if res, ok := c.loadDisk(key); ok {
			c.mu.Lock()
			c.stats.DiskHits++
			c.insertLocked(key, res)
			c.mu.Unlock()
			return res, true
		}
	}
	return engine.Result{}, false
}

// Put stores the result under key in every tier: memory (with LRU
// eviction beyond capacity), disk when enabled, and the remote peer
// when configured. Peer propagation is asynchronous — Put never waits
// on the network, so a slow or wedged peer cannot stall verification;
// a full propagation queue drops the entry (counted in RemoteErrors),
// and it is simply recomputed by whoever misses it.
func (c *Cache) Put(key string, res engine.Result) {
	c.putLocal(key, res)
	if c.remoteURL != "" {
		c.enqueueRemotePut(key, res)
	}
}

// putLocal stores into the memory and disk tiers only (the peer HTTP
// handler stores through it, which is what keeps peer topologies from
// re-propagating entries forever).
func (c *Cache) putLocal(key string, res engine.Result) {
	c.mu.Lock()
	c.stats.Puts++
	c.insertLocked(key, res)
	c.mu.Unlock()
	c.persistDisk(key, res)
}

// persistDisk writes the entry to the disk tier, counting failures.
func (c *Cache) persistDisk(key string, res engine.Result) {
	if c.dir == "" {
		return
	}
	if err := c.storeDisk(key, res); err != nil {
		c.mu.Lock()
		c.stats.DiskErrors++
		c.mu.Unlock()
	}
}

func (c *Cache) insertLocked(key string, res engine.Result) {
	if el, ok := c.idx[key]; ok {
		el.Value.(*entry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.idx[key] = c.ll.PushFront(&entry{key: key, res: res})
	for c.capacity > 0 && c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.idx, last.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// Len reports the in-memory entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.ll.Len()
	st.Capacity = c.capacity
	return st
}

// path maps a key (a hex content hash) to its file.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// diskMagic opens the checksum envelope of a disk-tier entry:
// "MCACHK1 " + 64 hex chars of SHA-256(payload) + "\n" + payload. The
// cache key addresses the *question*, so the payload needs its own
// digest for the stored answer to be validatable at all.
const diskMagic = "MCACHK1 "

// diskEnvelope wraps an encoded Result payload in the checksum header.
func diskEnvelope(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := diskMagic + hex.EncodeToString(sum[:]) + "\n"
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// openDiskEnvelope validates a disk file's checksum envelope and
// returns the payload. Files without the magic are legacy pre-envelope
// entries and pass through whole (their decode is still validated by
// the caller).
func openDiskEnvelope(data []byte) ([]byte, error) {
	if !bytes.HasPrefix(data, []byte(diskMagic)) {
		return data, nil
	}
	headerLen := len(diskMagic) + sha256.Size*2 + 1
	if len(data) < headerLen || data[headerLen-1] != '\n' {
		return nil, fmt.Errorf("cache: truncated disk envelope header")
	}
	payload := data[headerLen:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != string(data[len(diskMagic):headerLen-1]) {
		return nil, fmt.Errorf("cache: disk entry checksum mismatch")
	}
	return payload, nil
}

func (c *Cache) loadDisk(key string) (engine.Result, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return engine.Result{}, false
	}
	payload, err := openDiskEnvelope(data)
	if err == nil {
		var res engine.Result
		if res, err = engine.DecodeResult(payload); err == nil {
			return res, true
		}
	}
	// Corrupt, truncated, or foreign bytes: quarantine the file and
	// degrade to a miss. The entry is recomputed and rewritten by
	// whoever needed it — a flipped bit on disk can cost a recompute
	// but can never surface as a cached verdict.
	os.Remove(c.path(key))
	c.mu.Lock()
	c.stats.DiskErrors++
	c.stats.CorruptEntries++
	c.mu.Unlock()
	return engine.Result{}, false
}

func (c *Cache) storeDisk(key string, res engine.Result) error {
	payload, err := engine.EncodeResult(&res)
	if err != nil {
		return err
	}
	data := c.chaos.Mangle("cache.disk", diskEnvelope(payload))
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Rename is atomic within the directory: readers see either the old
	// file or the complete new one, never a partial write.
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// The compile-time check that Cache satisfies the Runner's cache hook.
var _ engine.ResultCache = (*Cache)(nil)
