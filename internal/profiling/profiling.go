// Package profiling wires the standard pprof profilers into command
// flags, so perf work on the CLIs (cmd/mcacheck, cmd/mcafuzz) never
// requires editing code: every optimization session starts from
// `-cpuprofile`/`-memprofile` output fed to `go tool pprof`. See
// docs/OPERATIONS.md for usage.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and arranges a
// heap profile to be written to memPath (when non-empty) at stop time.
// The returned stop function is safe to call exactly once, typically
// via defer; it finishes both profiles and reports any write error on
// stderr (profiling failures should never change a command's exit
// code).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: close cpu profile: %v\n", err)
			}
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize a settled heap before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "profiling: write heap profile: %v\n", err)
		}
	}, nil
}
