package mcaverify_test

import (
	"bytes"
	"context"
	"testing"

	mcaverify "repro"
)

// fuzzCorpusProfile pins the tier-1 differential corpus: small honest
// scenarios (the default utility/rebid mix) over every topology, with
// faults on a third of them and relational models on a third, and
// exploration budgets low enough that an exhausted search stays cheap.
func fuzzCorpusProfile() mcaverify.FuzzProfile {
	p := mcaverify.DefaultFuzzProfile()
	p.Agents = mcaverify.FuzzIntRange{Min: 2, Max: 3}
	p.Items = mcaverify.FuzzIntRange{Min: 2, Max: 2}
	p.MaxStates = mcaverify.FuzzIntRange{Min: 2000, Max: 10000}
	p.FaultProb = 0.3
	p.ModelProb = 0.35
	return p
}

// TestDifferentialFuzz is the tier-1 fuzzing gate: a fixed-seed corpus
// of 60 generated scenarios runs through all three engine adapter
// families — Explicit (serial DFS and sharded frontier), Simulation,
// and SAT (with the naive/optimized sibling-encoding cross-check) — and
// every scenario's verdicts must be mutually consistent under the
// oracle's comparability rules.
func TestDifferentialFuzz(t *testing.T) {
	scenarios, err := mcaverify.Generate(fuzzCorpusProfile(), 20260728, 60)
	if err != nil {
		t.Fatal(err)
	}
	panel := []mcaverify.Engine{
		mcaverify.ExplicitEngine{},
		mcaverify.ExplicitEngine{Workers: 4},
		mcaverify.SimulationEngine{BudgetFactor: 64},
		mcaverify.SATEngine{},
	}
	results, sum := mcaverify.DiffSweep(context.Background(), scenarios, mcaverify.DiffOptions{Engines: panel})
	for _, r := range results {
		if !r.Agree {
			t.Errorf("scenario %d (%s): %v", r.Index, r.Scenario.Name, r.Reasons)
		}
	}
	if sum.Disagreements != 0 {
		t.Fatalf("%d of %d scenarios disagree: %+v", sum.Disagreements, sum.Scenarios, sum)
	}
	// The corpus must genuinely exercise the comparisons, not pass
	// vacuously: enough scenarios where at least two dynamic engines
	// reached a conclusive verdict, and enough relational pairs.
	dynPairs, relPairs := 0, 0
	for _, r := range results {
		dyn, rel := 0, 0
		for _, l := range r.Legs {
			conclusive := l.Result.Status == mcaverify.ResultHolds || l.Result.Status == mcaverify.ResultViolated
			if !conclusive {
				continue
			}
			switch l.Class {
			case mcaverify.DiffClassRelational:
				rel++
			default:
				dyn++
			}
		}
		if dyn >= 2 {
			dynPairs++
		}
		if rel >= 2 {
			relPairs++
		}
	}
	if dynPairs < 25 {
		t.Errorf("only %d of %d scenarios compared two conclusive dynamic engines", dynPairs, len(results))
	}
	if relPairs < 8 {
		t.Errorf("only %d of %d scenarios compared both relational encodings", relPairs, len(results))
	}
}

// TestDifferentialFuzzDupReorder is the regression gate on the richer
// fault adversaries: a fixed-seed corpus of 20 scenarios drawn from a
// profile with message duplication and bounded reordering enabled runs
// through the full panel under the extended comparability classes. The
// probabilistic legs route to the sampling engine, which may miss a
// violation the exact engines see but must never invent one; scenarios
// whose fault draw stays exhaustively checkable keep their
// exact-vs-exact and exact-vs-sampling comparisons.
func TestDifferentialFuzzDupReorder(t *testing.T) {
	p := fuzzCorpusProfile()
	p.FaultProb = 0.6
	p.DupMax = 0.4
	p.ReorderMax = 3
	scenarios, err := mcaverify.Generate(p, 20260807, 20)
	if err != nil {
		t.Fatal(err)
	}
	// The corpus must actually exercise the new adversaries.
	dup, reorder := 0, 0
	for _, s := range scenarios {
		if s.Faults.Duplicate > 0 {
			dup++
		}
		if s.Faults.Reorder > 0 {
			reorder++
		}
	}
	if dup < 5 || reorder < 5 {
		t.Fatalf("corpus underuses the new faults: %d duplicating, %d reordering of 20", dup, reorder)
	}
	panel := []mcaverify.Engine{
		mcaverify.ExplicitEngine{},
		mcaverify.ExplicitEngine{Workers: 4},
		mcaverify.SimulationEngine{BudgetFactor: 64},
		mcaverify.SATEngine{},
	}
	results, sum := mcaverify.DiffSweep(context.Background(), scenarios, mcaverify.DiffOptions{Engines: panel})
	for _, r := range results {
		if !r.Agree {
			t.Errorf("scenario %d (%s): %v", r.Index, r.Scenario.Name, r.Reasons)
		}
	}
	if sum.Disagreements != 0 {
		t.Fatalf("%d of %d scenarios disagree: %+v", sum.Disagreements, sum.Scenarios, sum)
	}
	// Every duplicating/reordering scenario still gets a sampling leg.
	for _, r := range results {
		if r.Scenario.Faults.Duplicate == 0 && r.Scenario.Faults.Reorder == 0 {
			continue
		}
		sampled := false
		for _, l := range r.Legs {
			if l.Class == mcaverify.DiffClassDynamicSampling {
				sampled = true
			}
		}
		if !sampled {
			t.Errorf("scenario %d (%s) has new faults but no sampling leg", r.Index, r.Scenario.Name)
		}
	}
}

// TestFuzzCorpusReproducible pins the acceptance contract end to end:
// the same seed yields a byte-identical corpus and identical verdicts
// at 1 and 8 workers.
func TestFuzzCorpusReproducible(t *testing.T) {
	profile := fuzzCorpusProfile()
	a, err := mcaverify.Generate(profile, 99, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mcaverify.Generate(profile, 99, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		ea, err := mcaverify.EncodeScenario(&a[i])
		if err != nil {
			t.Fatal(err)
		}
		eb, _ := mcaverify.EncodeScenario(&b[i])
		if !bytes.Equal(ea, eb) {
			t.Fatalf("scenario %d differs across generations", i)
		}
	}
	var verdicts [][]mcaverify.ResultStatus
	for _, workers := range []int{1, 8} {
		rs, _ := mcaverify.DiffSweep(context.Background(), a, mcaverify.DiffOptions{Workers: workers})
		var vs []mcaverify.ResultStatus
		for _, r := range rs {
			for _, l := range r.Legs {
				vs = append(vs, l.Result.Status)
			}
		}
		verdicts = append(verdicts, vs)
	}
	if len(verdicts[0]) != len(verdicts[1]) {
		t.Fatalf("leg counts differ across worker counts: %d vs %d", len(verdicts[0]), len(verdicts[1]))
	}
	for i := range verdicts[0] {
		if verdicts[0][i] != verdicts[1][i] {
			t.Fatalf("leg %d verdict differs across worker counts", i)
		}
	}
}
