package main

import "testing"

// Each experiment must run cleanly and reproduce its expected verdicts
// (the experiment functions error on any mismatch with the paper).
func TestAllExperiments(t *testing.T) {
	if code := run(nil); code != 0 {
		t.Fatalf("experiments exit = %d, want 0", code)
	}
}

func TestSingleExperimentSelection(t *testing.T) {
	if code := run([]string{"-only", "e1"}); code != 0 {
		t.Fatalf("e1 exit = %d", code)
	}
	if code := run([]string{"-only", "E6"}); code != 0 {
		t.Fatalf("case-insensitive selection failed")
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if code := run([]string{"-only", "e99"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestBadFlagRejected(t *testing.T) {
	if code := run([]string{"-nope"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
