// Command experiments regenerates every evaluation artifact of the
// paper in one run and prints them in the same structure as the paper's
// figures and results. See EXPERIMENTS.md for the paper-vs-measured
// discussion.
//
// Usage:
//
//	experiments            # all experiments
//	experiments -only e5   # a single experiment (e1..e9)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/explore"
	"repro/internal/graph"
	"repro/internal/mca"
	"repro/internal/mcamodel"
	"repro/internal/netsim"
	"repro/internal/relalg"
	"repro/internal/sat"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	all := map[string]func() error{
		"e1": e1Fig1,
		"e2": e2Fig2,
		"e3": e3Result1,
		"e4": e4Result2,
		"e5": e5Encodings,
		"e6": e6Bound,
		"e7": e7Static,
		"e8": e8ParallelExplore,
		"e9": e9EngineSweep,
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"}
	// The -only vocabulary is derived from the registry, so adding an
	// experiment can never leave the help text or the error message
	// describing a stale range.
	span := fmt.Sprintf("%s..%s", order[0], order[len(order)-1])
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("only", "", fmt.Sprintf("run a single experiment: %s (default all)", span))
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sel := order
	if *only != "" {
		if _, ok := all[strings.ToLower(*only)]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want %s)\n", *only, span)
			return 2
		}
		sel = []string{strings.ToLower(*only)}
	}
	for _, name := range sel {
		if err := all[name](); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			return 1
		}
		fmt.Println()
	}
	return 0
}

func header(s string) { fmt.Printf("==== %s\n", s) }

func e1Fig1() error {
	header("E1 — Fig. 1: two agents, three items (A, B, C)")
	pol := mca.Policy{Target: 2, Utility: mca.FlatUtility{}, Rebid: mca.RebidOnChange}
	a1 := mca.MustNewAgent(mca.Config{ID: 0, Items: 3, Base: []int64{10, 0, 30}, Policy: pol})
	a2 := mca.MustNewAgent(mca.Config{ID: 1, Items: 3, Base: []int64{20, 15, 0}, Policy: pol})
	a1.BidPhase()
	a2.BidPhase()
	fmt.Println("bidding:")
	printFig1(a1, a2)
	m21 := a2.Snapshot(0)
	a2.HandleMessage(a1.Snapshot(1))
	a1.HandleMessage(m21)
	fmt.Println("after agreement:")
	printFig1(a1, a2)
	if !a1.AgreesWith(a2) {
		return fmt.Errorf("fig.1 agents disagree")
	}
	fmt.Println("paper: b=(20,15,30), a=(2,2,1) — reproduced")
	return nil
}

func printFig1(agents ...*mca.Agent) {
	names := []string{"A", "B", "C"}
	for _, a := range agents {
		var b, w []string
		for _, bi := range a.View() {
			if bi.Winner == mca.NoAgent {
				b = append(b, "--")
				w = append(w, "--")
			} else {
				b = append(b, fmt.Sprint(bi.Bid))
				w = append(w, fmt.Sprint(int(bi.Winner)+1))
			}
		}
		var m []string
		for _, j := range a.Bundle() {
			m = append(m, names[j])
		}
		fmt.Printf("  agent %d: b=(%s) a=(%s) m={%s}\n",
			a.ID()+1, strings.Join(b, ","), strings.Join(w, ","), strings.Join(m, ","))
	}
}

func fig2Agents(util mca.Utility, release bool) []*mca.Agent {
	pol := mca.Policy{Target: 2, Utility: util, Rebid: mca.RebidOnChange, ReleaseOutbid: release}
	return []*mca.Agent{
		mca.MustNewAgent(mca.Config{ID: 0, Items: 2, Base: []int64{10, 15}, Policy: pol}),
		mca.MustNewAgent(mca.Config{ID: 1, Items: 2, Base: []int64{15, 10}, Policy: pol}),
	}
}

func e2Fig2() error {
	header("E2 — Fig. 2: release-outbid instability")
	v := explore.Check(fig2Agents(mca.NonSubmodularSynergy{}, true), graph.Complete(2), explore.Options{})
	if v.OK || v.Violation != explore.ViolationOscillation {
		return fmt.Errorf("expected oscillation, got OK=%v %v", v.OK, v.Violation)
	}
	fmt.Println("non-sub-modular + release-outbid: OSCILLATION found; counterexample:")
	fmt.Print(v.Trace.String())
	return nil
}

func e3Result1() error {
	header("E3 — Result 1: policy combination matrix")
	fmt.Printf("%-26s %-8s %-10s %s\n", "utility (p_u)", "p_RO", "verdict", "violation")
	for _, u := range []mca.Utility{mca.SubmodularResidual{}, mca.NonSubmodularSynergy{}} {
		for _, rel := range []bool{false, true} {
			v := explore.Check(fig2Agents(u, rel), graph.Complete(2), explore.Options{})
			verdict := "converges"
			if !v.OK {
				verdict = "FAILS"
			}
			fmt.Printf("%-26s %-8v %-10s %v\n", u.Name(), rel, verdict, v.Violation)
			wantFail := !u.Submodular() && rel
			if v.OK == wantFail {
				return fmt.Errorf("unexpected verdict for %s/p_RO=%v", u.Name(), rel)
			}
		}
	}
	fmt.Println("paper: consensus always reached except non-sub-modular + p_RO — reproduced")
	return nil
}

func e4Result2() error {
	header("E4 — Result 2: the rebidding attack")
	attack := mca.Policy{Target: 1, Utility: mca.EscalatingUtility{Cap: 1 << 20}, Rebid: mca.RebidAlways}
	agents := []*mca.Agent{
		mca.MustNewAgent(mca.Config{ID: 0, Items: 1, Base: []int64{10}, Policy: attack}),
		mca.MustNewAgent(mca.Config{ID: 1, Items: 1, Base: []int64{5}, Policy: attack}),
	}
	v := explore.Check(agents, graph.Complete(2), explore.Options{})
	if v.OK {
		return fmt.Errorf("attack unexpectedly verified")
	}
	fmt.Printf("Remark 1 condition removed: consensus VIOLATED (%v)\n", v.Violation)

	// Countermeasure (footnote 7): the detector flags the attacker.
	honest := mca.MustNewAgent(mca.Config{ID: 0, Items: 1, Base: []int64{10},
		Policy: mca.Policy{Target: 1, Utility: mca.FlatUtility{}, Rebid: mca.RebidOnChange}})
	attacker := mca.MustNewAgent(mca.Config{ID: 1, Items: 1, Base: []int64{5}, Policy: attack})
	det := mca.NewDetector(0, 1)
	honest.BidPhase()
	attacker.BidPhase()
	for r := 0; r < 6; r++ {
		m := attacker.Snapshot(0)
		det.Observe(m, honest.View())
		back := honest.Snapshot(1)
		honest.HandleMessage(m)
		attacker.HandleMessage(back)
	}
	if !det.IsFlagged(1) {
		return fmt.Errorf("detector failed to flag the attacker")
	}
	fmt.Printf("countermeasure: neighborhood bid-history detector flags agent 1 (%d violations)\n",
		len(det.Evidence(1)))
	return nil
}

func e5Encodings() error {
	header("E5 — abstraction efficiency: naive vs optimized encodings")
	sc := mcamodel.PaperScope()
	n, err := mcamodel.BuildNaive(sc)
	if err != nil {
		return err
	}
	o, err := mcamodel.BuildOptimized(sc)
	if err != nil {
		return err
	}
	mn := mcamodel.MeasureTranslation(n)
	mo := mcamodel.MeasureTranslation(o)
	fmt.Printf("scope %s\n", sc)
	fmt.Printf("  %s\n  %s\n", mn, mo)
	fmt.Printf("clause reduction: %.1f%% (paper: 259K -> 190K, ~27%%)\n",
		100*(1-float64(mo.Clauses)/float64(mn.Clauses)))

	// Parallel-vs-serial: the same consensus check on the optimized
	// encoding, solved sequentially, by the solver portfolio, and by
	// cube-and-conquer. All three must agree on the verdict.
	workers := runtime.GOMAXPROCS(0)
	serial := mcamodel.CheckConsensus(o, sat.Options{})
	pf := mcamodel.CheckConsensusParallel(o, sat.Options{}, relalg.ParallelOptions{Workers: workers})
	cc := mcamodel.CheckConsensusParallel(o, sat.Options{}, relalg.ParallelOptions{Workers: workers, CubeVars: 4})
	fmt.Printf("consensus check, optimized encoding (workers=%d):\n", workers)
	fmt.Printf("  %-22s solve=%8s %s\n", "serial", serial.Solve.Round(time.Millisecond), serial.CheckStatus)
	fmt.Printf("  %-22s solve=%8s %s\n", "portfolio", pf.Solve.Round(time.Millisecond), pf.CheckStatus)
	fmt.Printf("  %-22s solve=%8s %s\n", "cube-and-conquer (2^4)", cc.Solve.Round(time.Millisecond), cc.CheckStatus)
	if pf.CheckStatus != serial.CheckStatus || cc.CheckStatus != serial.CheckStatus {
		return fmt.Errorf("parallel backends disagree with serial: serial=%v portfolio=%v cube=%v",
			serial.CheckStatus, pf.CheckStatus, cc.CheckStatus)
	}
	return nil
}

func e6Bound() error {
	header("E6 — consensus within the D·|J| message bound")
	fmt.Printf("%-10s %-6s %-6s %-8s %-8s\n", "topology", "D", "|J|", "bound", "rounds")
	for _, tp := range []graph.Topology{graph.TopologyLine, graph.TopologyRing, graph.TopologyStar, graph.TopologyComplete} {
		n, items := 4, 3
		g := graph.Build(tp, n, 1)
		agents := make([]*mca.Agent, n)
		for i := range agents {
			base := make([]int64, items)
			for j := range base {
				base[j] = int64(10 + (i*7+j*3)%17)
			}
			agents[i] = mca.MustNewAgent(mca.Config{ID: mca.AgentID(i), Items: items, Base: base,
				Policy: mca.Policy{Target: items, Utility: mca.SubmodularResidual{}, ReleaseOutbid: true, Rebid: mca.RebidOnChange}})
		}
		r, err := mca.NewSyncRunner(agents, g)
		if err != nil {
			return err
		}
		bound := mca.MessageBound(g, items)
		out := r.Run(bound + 1)
		if !out.Converged {
			return fmt.Errorf("%v: not converged within the bound", tp)
		}
		fmt.Printf("%-10s %-6d %-6d %-8d %-8d\n", tp, g.Diameter(), items, bound, out.Rounds)
	}
	return nil
}

func e8ParallelExplore() error {
	header("E8 — sharded parallel exploration vs serial DFS")
	mk := func() []*mca.Agent {
		bases := [][]int64{{12, 8}, {8, 12}, {4, 8}}
		agents := make([]*mca.Agent, len(bases))
		for i, b := range bases {
			agents[i] = mca.MustNewAgent(mca.Config{
				ID: mca.AgentID(i), Items: len(b), Base: b,
				Policy: mca.Policy{Target: 2, Utility: mca.FlatUtility{}, Rebid: mca.RebidOnChange},
			})
		}
		return agents
	}
	scenario := engine.Scenario{
		Name:    "e8",
		Agents:  mk(),
		Graph:   graph.Ring(3),
		Explore: explore.Options{MaxStates: 2000000},
	}
	workers := runtime.GOMAXPROCS(0)
	serial := engine.Explicit{}.Verify(context.Background(), scenario)
	par := engine.Explicit{Workers: workers}.Verify(context.Background(), scenario)

	fmt.Printf("3-agent ring, 2 items, flat utility (~100K states):\n")
	fmt.Printf("  %-28s states=%-8d %8s %s\n", serial.Engine, serial.Stats.States,
		serial.Stats.Wall.Round(time.Millisecond), serial.Status)
	fmt.Printf("  %-28s states=%-8d %8s %s\n", par.Engine, par.Stats.States,
		par.Stats.Wall.Round(time.Millisecond), par.Status)
	if par.Status != serial.Status {
		return fmt.Errorf("parallel explorer disagrees with serial: %v vs %v", par.Status, serial.Status)
	}
	return nil
}

// e9EngineSweep exercises the engine layer's batch runner: one sweep
// mixing policy, topology, and network fault dimensions, scheduled over
// a worker pool, with a deterministic aggregate summary. This is the
// production workload the paper's one-model-many-checks methodology
// scales into.
func e9EngineSweep() error {
	header("E9 — engine-layer scenario sweep (policies x topologies x network faults)")
	utilities := []mca.Utility{mca.SubmodularResidual{}, mca.NonSubmodularSynergy{}}
	graphs := map[string]*graph.Graph{"complete2": graph.Complete(2), "star3": graph.Star(3)}
	faults := map[string]netsim.Faults{
		"reliable":  {},
		"drop25":    {Drop: 0.25},
		"delay3":    {Delay: 3},
		"partition": {Partitions: [][]int{{0}, {1, 2}}, HealAfter: 2},
	}
	var scenarios []engine.Scenario
	for _, u := range utilities {
		for _, rel := range []bool{false, true} {
			for gname, g := range graphs {
				specs := make([]mca.Config, g.N())
				for i := range specs {
					specs[i] = mca.Config{
						ID: mca.AgentID(i), Items: 2,
						Base:   []int64{int64(10 + 5*(i%2)), int64(15 - 5*(i%2))},
						Policy: mca.Policy{Target: 2, Utility: u, ReleaseOutbid: rel, Rebid: mca.RebidOnChange},
					}
				}
				for fname, f := range faults {
					if fname == "partition" && g.N() < 3 {
						continue
					}
					scenarios = append(scenarios, engine.Scenario{
						Name:       fmt.Sprintf("%s/p_RO=%v/%s/%s", u.Name(), rel, gname, fname),
						AgentSpecs: specs,
						Graph:      g,
						Explore:    explore.Options{MaxStates: 50000},
						Faults:     f,
					})
				}
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	results, sum := engine.NewRunner(engine.RunnerOptions{Workers: workers}).Run(context.Background(), scenarios)
	for _, res := range results {
		if res.Status == engine.StatusError {
			return fmt.Errorf("scenario %q: %v", res.Scenario, res.Err)
		}
	}
	fmt.Printf("%d scenarios on %d workers in %s\n", sum.Total, workers, sum.Wall.Round(time.Millisecond))
	fmt.Printf("  holds=%d violated=%d inconclusive=%d errors=%d\n",
		sum.Holds, sum.Violated, sum.Inconclusive, sum.Errors)
	if sum.Holds == 0 || sum.Violated == 0 {
		return fmt.Errorf("sweep degenerate: %+v", sum)
	}
	// Re-run at one worker: the aggregate must be bit-identical.
	_, again := engine.NewRunner(engine.RunnerOptions{Workers: 1}).Run(context.Background(), scenarios)
	again.Wall, sum.Wall = 0, 0
	if fmt.Sprintf("%+v", again) != fmt.Sprintf("%+v", sum) {
		return fmt.Errorf("summary depends on worker count:\n  %+v\n  %+v", sum, again)
	}
	fmt.Println("aggregate identical at any worker count — deterministic sweep")
	return nil
}

func e7Static() error {
	header("E7 — static model sanity (run {} for the paper's scope)")
	sc := mcamodel.Scope{PNodes: 3, VNodes: 2, Values: 3, States: 2, Msgs: 1}
	e, err := mcamodel.BuildOptimized(sc)
	if err != nil {
		return err
	}
	ok, m := mcamodel.RunSatisfiable(e, sat.Options{})
	if !ok {
		return fmt.Errorf("static model has no instances")
	}
	fmt.Printf("instance found: %s\n", m)
	return nil
}
