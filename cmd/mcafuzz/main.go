// Command mcafuzz manufactures verification workloads and hunts for
// checker disagreements: it generates a seeded random scenario corpus
// from a profile (docs/FUZZING.md), verifies every scenario on a panel
// of engine adapters through the cache-aware differential oracle, and
// reports any scenario on which the checkers' verdicts are mutually
// inconsistent. With -shrink each disagreement is minimized by greedy
// delta debugging before being written out; flagged (and, with -dump,
// all generated) scenarios land in -out as canonical scenario JSON,
// ready for mcacheck -scenario, mcaserved, or a regression corpus.
//
// With -coverage the blind sweep becomes a feedback loop: scenarios
// that push an engine's state store into a new quantized shape
// (docs/FUZZING.md, "Coverage-guided generation") join a corpus, and
// later rounds mutate corpus entries instead of sampling blind —
// -rounds splits the -n budget into generations, and per-round corpus
// stats stream to stdout as the loop runs.
//
// Everything is reproducible: the same -seed yields byte-identical
// scenarios and identical verdicts at any -workers value, so a corpus
// line from CI replays locally. Coverage-guided corpora replay the
// same way from (profile, seed, rounds).
//
// Usage:
//
//	mcafuzz -seed 1 -n 25
//	mcafuzz -seed 7 -n 500 -profile examples/scenarios/fuzz-profile.json
//	mcafuzz -engines explicit,explicit-parallel,simulation -n 100
//	mcafuzz -seed 3 -n 200 -shrink -out corpus/
//	mcafuzz -n 1000 -cachedir /tmp/mcafuzz-cache   # warm re-runs
//	mcafuzz -coverage -seed 1 -rounds 5 -n 40 -out corpus/
//
// Exit code 0 means every scenario's verdicts were consistent, 1 means
// disagreements were found, 2 means a usage or I/O error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("mcafuzz", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "corpus seed; same seed, same corpus and verdicts")
	n := fs.Int("n", 100, "number of scenarios to generate")
	profilePath := fs.String("profile", "", "generator profile JSON (docs/FUZZING.md); empty = built-in default profile")
	enginesSpec := fs.String("engines", "explicit,simulation,sat", "comma-separated engine panel: auto|explicit|explicit-parallel|simulation|sat|sat-portfolio|sat-cube")
	workers := fs.Int("workers", 0, "scenario worker pool size (0 = one per CPU; never affects verdicts)")
	coverage := fs.Bool("coverage", false, "coverage-guided generation: mutate scenarios that reach new store-signature buckets instead of sampling blind")
	rounds := fs.Int("rounds", 4, "coverage-guided generations; the -n budget is split evenly across them (with -coverage)")
	shrink := fs.Bool("shrink", false, "minimize each disagreement by delta debugging before writing it")
	outDir := fs.String("out", "", "directory for corpus files (created if absent); disagreements are always written here when set")
	dump := fs.Bool("dump", false, "also write every generated scenario to -out, not just disagreements")
	cacheDir := fs.String("cachedir", "", "persistent result-cache directory; re-runs of the same corpus become lookups")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProfiling, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcafuzz:", err)
		return 2
	}
	defer stopProfiling()
	if (*shrink || *dump) && *outDir == "" {
		fmt.Fprintln(os.Stderr, "mcafuzz: -shrink and -dump write corpus files and require -out")
		return 2
	}

	profile := gen.DefaultProfile()
	profileName := "default"
	if *profilePath != "" {
		data, err := os.ReadFile(*profilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		profile, err = gen.DecodeProfile(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		profileName = *profilePath
	}
	engines, err := gen.ParseEngines(*enginesSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var resultCache engine.ResultCache
	if *cacheDir != "" {
		c, err := cache.New(cache.Options{Dir: *cacheDir})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		resultCache = c
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	ctx := context.Background()
	opts := gen.DiffOptions{Engines: engines, Cache: resultCache, Workers: *workers}
	if *coverage {
		return runCoverage(ctx, out, coverageParams{
			profile: profile, profileName: profileName, enginesSpec: *enginesSpec,
			seed: *seed, n: *n, rounds: *rounds,
			outDir: *outDir, dump: *dump, shrink: *shrink, diff: opts,
		})
	}

	scenarios, err := gen.Generate(profile, *seed, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Fprintf(out, "mcafuzz: seed=%d n=%d profile=%s engines=%s\n", *seed, *n, profileName, *enginesSpec)

	results, sum := gen.DiffSweep(ctx, scenarios, opts)

	code := 0
	for _, r := range results {
		fmt.Fprintf(out, "%04d %s %s\n", r.Index, r.Scenario.Name, formatLegs(r))
		if *dump && *outDir != "" {
			if err := writeScenario(*outDir, r.Scenario.Name+".json", &r.Scenario); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
		if r.Agree {
			continue
		}
		code = 1
		for _, reason := range r.Reasons {
			fmt.Fprintf(out, "  disagreement: %s\n", reason)
		}
		if *outDir == "" {
			continue
		}
		if !*dump { // -dump already wrote this scenario above
			if err := writeScenario(*outDir, r.Scenario.Name+".json", &r.Scenario); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
		if *shrink {
			min, stats := shrinkDisagreement(ctx, r.Scenario, opts)
			if err := writeScenario(*outDir, r.Scenario.Name+".min.json", &min); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			fmt.Fprintf(out, "  shrunk: size %d -> %d (%d candidates tried)\n", stats.From, stats.To, stats.Tried)
		}
	}
	fmt.Fprintf(out, "summary: scenarios=%d disagreements=%d legs=%d holds=%d violated=%d inconclusive=%d errors=%d\n",
		sum.Scenarios, sum.Disagreements, sum.Legs, sum.Holds, sum.Violated, sum.Inconclusive, sum.Errors)
	return code
}

// coverageParams carries the -coverage mode's configuration.
type coverageParams struct {
	profile     gen.Profile
	profileName string
	enginesSpec string
	seed        int64
	n           int
	rounds      int
	outDir      string
	dump        bool
	shrink      bool
	diff        gen.DiffOptions
}

// runCoverage drives the coverage-guided loop: the -n budget splits
// evenly across -rounds generations, per-round corpus stats stream as
// the loop runs, and the discovered corpus (plus any disagreements,
// shrunk on request) lands in -out.
func runCoverage(ctx context.Context, out io.Writer, p coverageParams) int {
	if p.rounds <= 0 {
		fmt.Fprintln(os.Stderr, "mcafuzz: -rounds must be positive")
		return 2
	}
	perRound := p.n / p.rounds
	if perRound < 1 {
		perRound = 1
	}
	fmt.Fprintf(out, "mcafuzz: coverage seed=%d rounds=%d per-round=%d profile=%s engines=%s\n",
		p.seed, p.rounds, perRound, p.profileName, p.enginesSpec)
	res, err := gen.FuzzCoverage(ctx, gen.CoverageOptions{
		Profile:  p.profile,
		Seed:     p.seed,
		Rounds:   p.rounds,
		PerRound: perRound,
		Diff:     p.diff,
	}, func(rs gen.RoundStats) {
		fmt.Fprintf(out, "round %d: scenarios=%d new-buckets=%d buckets=%d corpus=%d disagreements=%d\n",
			rs.Round, rs.Scenarios, rs.NewBuckets, rs.Buckets, rs.Corpus, rs.Disagreements)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if p.dump && p.outDir != "" {
		for i := range res.Corpus {
			if err := writeScenario(p.outDir, res.Corpus[i].Name+".json", &res.Corpus[i]); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
	}
	code := 0
	for i := range res.Disagreements {
		r := &res.Disagreements[i]
		code = 1
		fmt.Fprintf(out, "%s %s\n", r.Scenario.Name, formatLegs(*r))
		for _, reason := range r.Reasons {
			fmt.Fprintf(out, "  disagreement: %s\n", reason)
		}
		if p.outDir == "" {
			continue
		}
		// Always written: a disagreeing scenario is not necessarily in
		// the coverage corpus, so -dump alone may not have caught it.
		if err := writeScenario(p.outDir, r.Scenario.Name+".json", &r.Scenario); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if p.shrink {
			min, stats := shrinkDisagreement(ctx, r.Scenario, p.diff)
			if err := writeScenario(p.outDir, r.Scenario.Name+".min.json", &min); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			fmt.Fprintf(out, "  shrunk: size %d -> %d (%d candidates tried)\n", stats.From, stats.To, stats.Tried)
		}
	}
	total := 0
	for _, rs := range res.Rounds {
		total += rs.Scenarios
	}
	fmt.Fprintf(out, "summary: rounds=%d scenarios=%d buckets=%d corpus=%d disagreements=%d\n",
		len(res.Rounds), total, len(res.Buckets), len(res.Corpus), len(res.Disagreements))
	return code
}

// formatLegs renders one scenario's verdicts: engine=status pairs in
// panel order, then the oracle's call. Only deterministic fields are
// printed, which is what keeps mcafuzz output byte-identical at any
// worker count.
func formatLegs(r gen.DiffResult) string {
	var b strings.Builder
	for _, l := range r.Legs {
		fmt.Fprintf(&b, "%s=%v ", l.Engine, l.Result.Status)
	}
	if len(r.Legs) == 0 {
		b.WriteString("(no applicable engines) ")
	}
	if r.Agree {
		b.WriteString("ok")
	} else {
		b.WriteString("DISAGREE")
	}
	return b.String()
}

// shrinkDisagreement minimizes a flagged scenario while the panel still
// disagrees on it.
func shrinkDisagreement(ctx context.Context, s engine.Scenario, opts gen.DiffOptions) (engine.Scenario, gen.ShrinkStats) {
	keep := func(c engine.Scenario) bool {
		return !gen.DiffVerify(ctx, c, opts).Agree
	}
	return gen.Shrink(s, keep, gen.ShrinkOptions{MaxTried: 300})
}

// writeScenario writes one canonical scenario document.
func writeScenario(dir, name string, s *engine.Scenario) error {
	data, err := engine.EncodeScenario(s)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644)
}
