// Command mcafuzz manufactures verification workloads and hunts for
// checker disagreements: it generates a seeded random scenario corpus
// from a profile (docs/FUZZING.md), verifies every scenario on a panel
// of engine adapters through the cache-aware differential oracle, and
// reports any scenario on which the checkers' verdicts are mutually
// inconsistent. With -shrink each disagreement is minimized by greedy
// delta debugging before being written out; flagged (and, with -dump,
// all generated) scenarios land in -out as canonical scenario JSON,
// ready for mcacheck -scenario, mcaserved, or a regression corpus.
//
// Everything is reproducible: the same -seed yields byte-identical
// scenarios and identical verdicts at any -workers value, so a corpus
// line from CI replays locally.
//
// Usage:
//
//	mcafuzz -seed 1 -n 25
//	mcafuzz -seed 7 -n 500 -profile examples/scenarios/fuzz-profile.json
//	mcafuzz -engines explicit,explicit-parallel,simulation -n 100
//	mcafuzz -seed 3 -n 200 -shrink -out corpus/
//	mcafuzz -n 1000 -cachedir /tmp/mcafuzz-cache   # warm re-runs
//
// Exit code 0 means every scenario's verdicts were consistent, 1 means
// disagreements were found, 2 means a usage or I/O error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("mcafuzz", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "corpus seed; same seed, same corpus and verdicts")
	n := fs.Int("n", 100, "number of scenarios to generate")
	profilePath := fs.String("profile", "", "generator profile JSON (docs/FUZZING.md); empty = built-in default profile")
	enginesSpec := fs.String("engines", "explicit,simulation,sat", "comma-separated engine panel: auto|explicit|explicit-parallel|simulation|sat|sat-portfolio|sat-cube")
	workers := fs.Int("workers", 0, "scenario worker pool size (0 = one per CPU; never affects verdicts)")
	shrink := fs.Bool("shrink", false, "minimize each disagreement by delta debugging before writing it")
	outDir := fs.String("out", "", "directory for corpus files (created if absent); disagreements are always written here when set")
	dump := fs.Bool("dump", false, "also write every generated scenario to -out, not just disagreements")
	cacheDir := fs.String("cachedir", "", "persistent result-cache directory; re-runs of the same corpus become lookups")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProfiling, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcafuzz:", err)
		return 2
	}
	defer stopProfiling()
	if (*shrink || *dump) && *outDir == "" {
		fmt.Fprintln(os.Stderr, "mcafuzz: -shrink and -dump write corpus files and require -out")
		return 2
	}

	profile := gen.DefaultProfile()
	profileName := "default"
	if *profilePath != "" {
		data, err := os.ReadFile(*profilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		profile, err = gen.DecodeProfile(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		profileName = *profilePath
	}
	engines, err := gen.ParseEngines(*enginesSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var resultCache engine.ResultCache
	if *cacheDir != "" {
		c, err := cache.New(cache.Options{Dir: *cacheDir})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		resultCache = c
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	scenarios, err := gen.Generate(profile, *seed, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Fprintf(out, "mcafuzz: seed=%d n=%d profile=%s engines=%s\n", *seed, *n, profileName, *enginesSpec)

	ctx := context.Background()
	opts := gen.DiffOptions{Engines: engines, Cache: resultCache, Workers: *workers}
	results, sum := gen.DiffSweep(ctx, scenarios, opts)

	code := 0
	for _, r := range results {
		fmt.Fprintf(out, "%04d %s %s\n", r.Index, r.Scenario.Name, formatLegs(r))
		if *dump && *outDir != "" {
			if err := writeScenario(*outDir, r.Scenario.Name+".json", &r.Scenario); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
		if r.Agree {
			continue
		}
		code = 1
		for _, reason := range r.Reasons {
			fmt.Fprintf(out, "  disagreement: %s\n", reason)
		}
		if *outDir == "" {
			continue
		}
		if !*dump { // -dump already wrote this scenario above
			if err := writeScenario(*outDir, r.Scenario.Name+".json", &r.Scenario); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
		if *shrink {
			min, stats := shrinkDisagreement(ctx, r.Scenario, opts)
			if err := writeScenario(*outDir, r.Scenario.Name+".min.json", &min); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			fmt.Fprintf(out, "  shrunk: size %d -> %d (%d candidates tried)\n", stats.From, stats.To, stats.Tried)
		}
	}
	fmt.Fprintf(out, "summary: scenarios=%d disagreements=%d legs=%d holds=%d violated=%d inconclusive=%d errors=%d\n",
		sum.Scenarios, sum.Disagreements, sum.Legs, sum.Holds, sum.Violated, sum.Inconclusive, sum.Errors)
	return code
}

// formatLegs renders one scenario's verdicts: engine=status pairs in
// panel order, then the oracle's call. Only deterministic fields are
// printed, which is what keeps mcafuzz output byte-identical at any
// worker count.
func formatLegs(r gen.DiffResult) string {
	var b strings.Builder
	for _, l := range r.Legs {
		fmt.Fprintf(&b, "%s=%v ", l.Engine, l.Result.Status)
	}
	if len(r.Legs) == 0 {
		b.WriteString("(no applicable engines) ")
	}
	if r.Agree {
		b.WriteString("ok")
	} else {
		b.WriteString("DISAGREE")
	}
	return b.String()
}

// shrinkDisagreement minimizes a flagged scenario while the panel still
// disagrees on it.
func shrinkDisagreement(ctx context.Context, s engine.Scenario, opts gen.DiffOptions) (engine.Scenario, gen.ShrinkStats) {
	keep := func(c engine.Scenario) bool {
		return !gen.DiffVerify(ctx, c, opts).Agree
	}
	return gen.Shrink(s, keep, gen.ShrinkOptions{MaxTried: 300})
}

// writeScenario writes one canonical scenario document.
func writeScenario(dir, name string, s *engine.Scenario) error {
	data, err := engine.EncodeScenario(s)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644)
}
