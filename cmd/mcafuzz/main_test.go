package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureRun executes run() with its output captured in a buffer.
func captureRun(t *testing.T, args []string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	code := run(args, &buf)
	return buf.String(), code
}

// The acceptance contract: the same seed produces byte-identical output
// and a byte-identical dumped corpus at 1 and 8 workers.
func TestMcafuzzReproducibleAcrossWorkers(t *testing.T) {
	var outs []string
	var corpora []map[string][]byte
	for _, workers := range []string{"1", "8"} {
		dir := t.TempDir()
		out, code := captureRun(t, []string{
			"-seed", "5", "-n", "12", "-workers", workers, "-dump", "-out", dir,
		})
		if code != 0 {
			t.Fatalf("workers=%s: exit %d\n%s", workers, code, out)
		}
		files := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = data
		}
		if len(files) != 12 {
			t.Fatalf("workers=%s: dumped %d corpus files, want 12", workers, len(files))
		}
		outs = append(outs, out)
		corpora = append(corpora, files)
	}
	if outs[0] != outs[1] {
		t.Fatalf("output differs across worker counts:\n--- workers=1\n%s\n--- workers=8\n%s", outs[0], outs[1])
	}
	for name, data := range corpora[0] {
		if !bytes.Equal(data, corpora[1][name]) {
			t.Fatalf("corpus file %s differs across worker counts", name)
		}
	}
}

// A profile file restricts the corpus, and its knobs are honoured.
func TestMcafuzzProfileFile(t *testing.T) {
	dir := t.TempDir()
	profile := filepath.Join(dir, "profile.json")
	if err := os.WriteFile(profile, []byte(`{"agents":{"min":2,"max":2},"topologies":["line"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := captureRun(t, []string{"-seed", "2", "-n", "5", "-profile", profile, "-engines", "explicit"})
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "profile="+profile) {
		t.Fatalf("profile provenance missing:\n%s", out)
	}
	if !strings.Contains(out, "summary: scenarios=5") {
		t.Fatalf("summary missing:\n%s", out)
	}
}

// The checked-in example profile stays decodable and runnable.
func TestMcafuzzExampleProfile(t *testing.T) {
	out, code := captureRun(t, []string{
		"-seed", "4", "-n", "6", "-engines", "simulation",
		"-profile", filepath.Join("..", "..", "examples", "scenarios", "fuzz-profile.json"),
	})
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "summary: scenarios=6") {
		t.Fatalf("summary missing:\n%s", out)
	}
}

// The coverage loop streams one stats line per round and dumps a
// byte-identical corpus at any worker count — the CLI face of the
// FuzzCoverage replay contract.
func TestMcafuzzCoverageReproducibleAcrossWorkers(t *testing.T) {
	var outs []string
	var corpora []map[string][]byte
	for _, workers := range []string{"1", "8"} {
		dir := t.TempDir()
		out, code := captureRun(t, []string{
			"-coverage", "-seed", "3", "-rounds", "3", "-n", "12",
			"-workers", workers, "-dump", "-out", dir,
		})
		if code != 0 {
			t.Fatalf("workers=%s: exit %d\n%s", workers, code, out)
		}
		for round := 0; round < 3; round++ {
			if !strings.Contains(out, "round "+string(rune('0'+round))+": scenarios=4") {
				t.Fatalf("workers=%s: round %d stats line missing:\n%s", workers, round, out)
			}
		}
		if !strings.Contains(out, "summary: rounds=3 scenarios=12") {
			t.Fatalf("workers=%s: summary missing:\n%s", workers, out)
		}
		files := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = data
		}
		if len(files) == 0 {
			t.Fatalf("workers=%s: coverage corpus empty", workers)
		}
		outs = append(outs, out)
		corpora = append(corpora, files)
	}
	if outs[0] != outs[1] {
		t.Fatalf("coverage output differs across worker counts:\n--- workers=1\n%s\n--- workers=8\n%s", outs[0], outs[1])
	}
	if len(corpora[0]) != len(corpora[1]) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(corpora[0]), len(corpora[1]))
	}
	for name, data := range corpora[0] {
		if !bytes.Equal(data, corpora[1][name]) {
			t.Fatalf("corpus file %s differs across worker counts", name)
		}
	}
}

func TestMcafuzzUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-engines", "warp-drive"},
		{"-profile", "/does/not/exist.json"},
		{"-n", "-3"},
		{"-shrink"}, // corpus-writing flags require -out
		{"-dump"},
		{"-coverage", "-rounds", "0"},
	}
	for _, args := range cases {
		if _, code := captureRun(t, args); code != 2 {
			t.Fatalf("args %v: exit code != 2", args)
		}
	}
}
