package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStderr runs fn with os.Stderr redirected to a pipe and
// returns what it wrote. run() prints operator-facing diagnostics
// there, and the corrupt-checkpoint hint is part of the contract.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = old }()
	fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// cappedRunArgs is a scenario that trips the -maxstates cap so a
// checkpoint is written: 3 agents, 2 items, line topology is ~500
// states uncapped.
func cappedRunArgs(checkpoint string) []string {
	return []string{
		"-agents", "3", "-items", "2", "-topology", "line",
		"-workers", "2", "-maxstates", "100",
		"-checkpoint", checkpoint, "-trace=false",
	}
}

func TestCheckpointResumeLifecycle(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "run.ckpt")
	if code := run(cappedRunArgs(cp)); code != 3 {
		t.Fatalf("capped run exit = %d, want 3 (inconclusive)", code)
	}
	if _, err := os.Stat(cp); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	code := run([]string{"-resume", cp, "-maxstates", "500000", "-trace=false"})
	if code != 0 {
		t.Fatalf("resume exit = %d, want 0 (holds)", code)
	}
}

func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "garbage.ckpt")
	if err := os.WriteFile(cp, []byte("not a checkpoint at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	var code int
	out := captureStderr(t, func() {
		code = run([]string{"-resume", cp, "-trace=false"})
	})
	if code != 2 {
		t.Fatalf("corrupt resume exit = %d, want 2", code)
	}
	if !strings.Contains(out, "corrupt or truncated") || !strings.Contains(out, "delete it and re-verify") {
		t.Fatalf("missing clean re-verify hint, stderr:\n%s", out)
	}
}

// TestChaosCheckpointWriteDegradesOnResume is the end-to-end failure
// path: arm bit-flip injection on the checkpoint write, cap a run, and
// resume from the mangled file. The resume must fail with the typed
// error and the operator hint — never a panic, never a verdict
// computed from damaged state.
func TestChaosCheckpointWriteDegradesOnResume(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "mangled.ckpt")
	args := append(cappedRunArgs(cp), "-chaos", "seed=1,flip=1")
	if code := run(args); code != 3 {
		t.Fatalf("capped chaos run exit = %d, want 3", code)
	}
	var code int
	out := captureStderr(t, func() {
		code = run([]string{"-resume", cp, "-maxstates", "500000", "-trace=false"})
	})
	if code != 2 {
		t.Fatalf("resume from mangled checkpoint exit = %d, want 2", code)
	}
	if !strings.Contains(out, "corrupt or truncated") {
		t.Fatalf("missing corruption diagnosis, stderr:\n%s", out)
	}
}

func TestChaosSpecErrorsExitCleanly(t *testing.T) {
	for _, spec := range []string{"crash=2", "bogus=1", "flip"} {
		if code := run([]string{"-chaos", spec, "-trace=false"}); code != 2 {
			t.Fatalf("spec %q exit = %d, want 2", spec, code)
		}
	}
}
