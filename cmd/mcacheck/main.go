// Command mcacheck is the push-button convergence analysis of the
// paper: it verifies the MCA consensus property for a chosen policy
// combination and scope by exhaustively exploring asynchronous message
// interleavings, and prints a counterexample trace when the property
// fails.
//
// Usage:
//
//	mcacheck -agents 2 -items 2 -topology complete \
//	         -utility nonsubmodular -release -rebid onchange
//	mcacheck -sweep          # the Result 1 policy matrix
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/explore"
	"repro/internal/graph"
	"repro/internal/mca"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mcacheck", flag.ContinueOnError)
	agents := fs.Int("agents", 2, "number of agents")
	items := fs.Int("items", 2, "number of items on auction")
	topology := fs.String("topology", "complete", "agent network: line|ring|star|complete|random")
	seed := fs.Int64("seed", 1, "seed for valuations and random topology")
	utility := fs.String("utility", "submodular", "utility policy p_u: submodular|nonsubmodular|flat|escalating")
	release := fs.Bool("release", true, "release-outbid policy p_RO")
	rebid := fs.String("rebid", "onchange", "Remark 1 rebid rule: onchange|never|always")
	target := fs.Int("target", 0, "target bundle size p_T (0 = number of items)")
	maxStates := fs.Int("maxstates", 500000, "state exploration budget")
	sweep := fs.Bool("sweep", false, "run the Result 1 policy sweep instead of a single check")
	showTrace := fs.Bool("trace", true, "print the counterexample trace on failure")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *sweep {
		return runSweep(*agents, *items, *seed, *maxStates)
	}

	util, err := parseUtility(*utility)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rb, err := parseRebid(*rebid)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	tp, err := parseTopology(*topology)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	tgt := *target
	if tgt <= 0 {
		tgt = *items
	}
	pol := mca.Policy{Target: tgt, Utility: util, ReleaseOutbid: *release, Rebid: rb}
	g := graph.Build(tp, *agents, *seed)
	as, err := buildAgents(*agents, *items, pol, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	fmt.Printf("checking consensus: %d agents (%s), %d items, p_u=%s p_RO=%v rebid=%s\n",
		*agents, tp, *items, util.Name(), *release, rb)
	v := explore.Check(as, g, explore.Options{MaxStates: *maxStates})
	fmt.Printf("states=%d depth=%d exhausted=%v\n", v.States, v.MaxDepth, v.Exhausted)
	if v.OK {
		fmt.Println("RESULT: consensus VERIFIED for all message interleavings in scope")
		return 0
	}
	if !v.Exhausted && v.Violation == explore.ViolationNone {
		fmt.Println("RESULT: INCONCLUSIVE (state budget exhausted; raise -maxstates)")
		return 3
	}
	fmt.Printf("RESULT: consensus VIOLATED (%v)\n", v.Violation)
	if *showTrace && v.Trace != nil {
		fmt.Println(v.Trace.String())
	}
	return 1
}

// runSweep reproduces Result 1: the policy combination matrix.
func runSweep(agents, items int, seed int64, maxStates int) int {
	utilities := []mca.Utility{mca.SubmodularResidual{}, mca.NonSubmodularSynergy{}}
	fmt.Printf("Result 1 policy sweep (%d agents, %d items, complete graph):\n", agents, items)
	fmt.Printf("%-26s %-10s %-12s %s\n", "utility (p_u)", "p_RO", "verdict", "violation")
	code := 0
	for _, u := range utilities {
		for _, rel := range []bool{false, true} {
			pol := mca.Policy{Target: items, Utility: u, ReleaseOutbid: rel, Rebid: mca.RebidOnChange}
			as, err := buildAgents(agents, items, pol, seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			v := explore.Check(as, graph.Complete(agents), explore.Options{MaxStates: maxStates})
			verdict := "converges"
			if !v.OK {
				verdict = "FAILS"
				if u.Submodular() || !rel {
					code = 1 // unexpected failure
				}
			}
			fmt.Printf("%-26s %-10v %-12s %v\n", u.Name(), rel, verdict, v.Violation)
		}
	}
	return code
}

// buildAgents creates mirrored antisymmetric valuations (the Fig. 2
// pattern generalized) so that conflicts genuinely arise.
func buildAgents(n, items int, pol mca.Policy, seed int64) ([]*mca.Agent, error) {
	out := make([]*mca.Agent, n)
	for i := 0; i < n; i++ {
		base := make([]int64, items)
		for j := 0; j < items; j++ {
			base[j] = int64(10 + 5*((i+j)%items) + int(seed%3))
		}
		a, err := mca.NewAgent(mca.Config{ID: mca.AgentID(i), Items: items, Base: base, Policy: pol})
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

func parseUtility(s string) (mca.Utility, error) {
	switch s {
	case "submodular":
		return mca.SubmodularResidual{}, nil
	case "nonsubmodular":
		return mca.NonSubmodularSynergy{}, nil
	case "flat":
		return mca.FlatUtility{}, nil
	case "escalating":
		return mca.EscalatingUtility{}, nil
	default:
		return nil, fmt.Errorf("unknown utility %q", s)
	}
}

func parseRebid(s string) (mca.RebidMode, error) {
	switch s {
	case "onchange":
		return mca.RebidOnChange, nil
	case "never":
		return mca.RebidNever, nil
	case "always":
		return mca.RebidAlways, nil
	default:
		return 0, fmt.Errorf("unknown rebid mode %q", s)
	}
}

func parseTopology(s string) (graph.Topology, error) {
	switch s {
	case "line":
		return graph.TopologyLine, nil
	case "ring":
		return graph.TopologyRing, nil
	case "star":
		return graph.TopologyStar, nil
	case "complete":
		return graph.TopologyComplete, nil
	case "random":
		return graph.TopologyRandomConnected, nil
	default:
		return 0, fmt.Errorf("unknown topology %q", s)
	}
}
