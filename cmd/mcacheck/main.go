// Command mcacheck is the push-button convergence analysis of the
// paper: it verifies the MCA consensus property for a chosen policy
// combination and scope through the engine layer — exhaustively (the
// serial DFS or the sharded parallel frontier) or, under probabilistic
// network faults, by seeded simulation — and prints a counterexample
// trace when the property fails.
//
// Usage:
//
//	mcacheck -agents 2 -items 2 -topology complete \
//	         -utility nonsubmodular -release -rebid onchange
//	mcacheck -workers 8                    # sharded parallel frontier
//	mcacheck -drop 0.2 -delay 3 -runs 32   # fault-model simulation
//	mcacheck -timeout 30s                  # deadline on the search
//	mcacheck -sweep          # the Result 1 policy matrix
//	mcacheck -scenario examples/scenarios/line3.json   # scenario file
//
// With -scenario the check runs a saved scenario document (the JSON
// format of docs/SCENARIO_FORMAT.md) instead of building one from
// flags; the natural engine is picked per scenario (SAT for relational
// models, simulation for probabilistic faults, explicit otherwise) and
// -workers/-timeout still apply.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/explore"
	"repro/internal/graph"
	"repro/internal/mca"
	"repro/internal/netsim"
	"repro/internal/profiling"

	// Register the mca-model codec so -scenario files with relational
	// models decode.
	_ "repro/internal/mcamodel"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mcacheck", flag.ContinueOnError)
	agents := fs.Int("agents", 2, "number of agents")
	items := fs.Int("items", 2, "number of items on auction")
	topology := fs.String("topology", "complete", "agent network: line|ring|star|complete|random")
	seed := fs.Int64("seed", 1, "seed for valuations and random topology")
	utility := fs.String("utility", "submodular", "utility policy p_u: submodular|nonsubmodular|flat|escalating")
	release := fs.Bool("release", true, "release-outbid policy p_RO")
	rebid := fs.String("rebid", "onchange", "Remark 1 rebid rule: onchange|never|always")
	target := fs.Int("target", 0, "target bundle size p_T (0 = number of items)")
	maxStates := fs.Int("maxstates", 500000, "state exploration budget")
	workers := fs.Int("workers", 0, "0 = serial DFS; N or -1 (per CPU) = sharded parallel frontier")
	storeName := fs.String("store", "exact", "seen-set store: exact|bitstate|hashcompact (lossy modes trade a bounded miss probability for memory; serial DFS only)")
	storeBits := fs.Int("storebits", 0, "log2 size of the lossy seen-set store (0 = the mode's default)")
	spillDir := fs.String("spilldir", "", "spill sealed state tables to sorted disk segments under this directory (parallel frontier only)")
	spillStates := fs.Int("spillstates", 0, "per-shard sealed-entry threshold that triggers a disk spill (0 = default; needs -spilldir)")
	checkpointFile := fs.String("checkpoint", "", "write a resumable checkpoint to this file when the run stops on the -maxstates budget (parallel frontier only)")
	resumeFile := fs.String("resume", "", "resume a capped run from a checkpoint file; the scenario comes from the checkpoint (combine with a raised -maxstates)")
	drop := fs.Float64("drop", 0, "message drop probability (switches to seeded simulation)")
	delay := fs.Int("delay", 0, "message delivery delay in ticks (switches to seeded simulation)")
	runs := fs.Int("runs", 32, "simulated executions when a probabilistic/timed fault model is set")
	timeout := fs.Duration("timeout", 0, "abort the check after this long (0 = no deadline)")
	sweep := fs.Bool("sweep", false, "run the Result 1 policy sweep instead of a single check")
	scenarioFile := fs.String("scenario", "", "verify a scenario JSON file (docs/SCENARIO_FORMAT.md) instead of building one from flags")
	showTrace := fs.Bool("trace", true, "print the counterexample trace on failure")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	chaosSpec := fs.String("chaos", "", "arm seeded fault injection on checkpoint writes (internal/chaos spec, e.g. \"seed=1,partial=0.5,flip=0.5\"); for failure-semantics testing only")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var injector *chaos.Injector
	if *chaosSpec != "" {
		cfg, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcacheck:", err)
			return 2
		}
		injector = chaos.New(cfg)
	}
	stopProfiling, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcacheck:", err)
		return 2
	}
	defer stopProfiling()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Flags explicitly set on the command line override values a resumed
	// checkpoint carries; untouched defaults defer to the checkpoint.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *sweep {
		return runSweep(ctx, *agents, *items, *seed, *maxStates)
	}
	if *resumeFile != "" {
		return runResume(ctx, resumeOptions{
			path:           *resumeFile,
			checkpointFile: *checkpointFile,
			workers:        *workers,
			maxStates:      *maxStates,
			setWorkers:     explicit["workers"],
			setMaxStates:   explicit["maxstates"],
			spillDir:       *spillDir,
			spillStates:    *spillStates,
			showTrace:      *showTrace,
			injector:       injector,
		})
	}
	if *scenarioFile != "" {
		return runScenarioFile(ctx, *scenarioFile, *workers, *checkpointFile, *showTrace, injector)
	}

	util, err := parseUtility(*utility)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rb, err := parseRebid(*rebid)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	tp, err := parseTopology(*topology)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	tgt := *target
	if tgt <= 0 {
		tgt = *items
	}
	pol := mca.Policy{Target: tgt, Utility: util, ReleaseOutbid: *release, Rebid: rb}
	g := graph.Build(tp, *agents, *seed)
	specs, err := buildSpecs(*agents, *items, pol, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	store, err := parseStore(*storeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	scenario := engine.Scenario{
		Name:       "mcacheck",
		AgentSpecs: specs,
		Graph:      g,
		Explore: explore.Options{
			MaxStates:   *maxStates,
			Store:       store,
			StoreBits:   *storeBits,
			SpillDir:    *spillDir,
			SpillStates: *spillStates,
		},
		Faults: netsim.Faults{Drop: *drop, Delay: *delay},
	}
	var eng engine.Engine = engine.Explicit{Workers: *workers}
	if !scenario.Faults.None() {
		eng = engine.Simulation{Runs: *runs, Seed: *seed}
	}

	fmt.Printf("checking consensus: %d agents (%s), %d items, p_u=%s p_RO=%v rebid=%s engine=%s\n",
		*agents, tp, *items, util.Name(), *release, rb, eng.Name())
	if *checkpointFile != "" && scenario.Faults.None() {
		res, next := engine.Explicit{Workers: *workers}.VerifyResumable(ctx, scenario, nil)
		writeCheckpoint(*checkpointFile, next, injector)
		return report(res, *showTrace)
	}
	return report(eng.Verify(ctx, scenario), *showTrace)
}

// resumeOptions carries the resume invocation's flag state.
type resumeOptions struct {
	path           string
	checkpointFile string
	workers        int
	maxStates      int
	setWorkers     bool
	setMaxStates   bool
	spillDir       string
	spillStates    int
	showTrace      bool
	injector       *chaos.Injector
}

// runResume continues a capped run from a checkpoint file. The scenario
// comes from the checkpoint; explicitly-passed -maxstates and -workers
// override the checkpointed values (raising the state budget is the
// point), untouched defaults defer to them.
func runResume(ctx context.Context, o resumeOptions) int {
	data, err := os.ReadFile(o.path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cp, err := engine.DecodeCheckpoint(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, engine.ErrCorruptCheckpoint) {
			fmt.Fprintf(os.Stderr, "mcacheck: checkpoint %s is corrupt or truncated; delete it and re-verify from scratch (run without -resume)\n", o.path)
		}
		return 2
	}
	s := cp.Scenario
	if o.setMaxStates {
		s.Explore.MaxStates = o.maxStates
	}
	s.Explore.SpillDir = o.spillDir
	s.Explore.SpillStates = o.spillStates
	workers := cp.Workers
	if o.setWorkers {
		workers = o.workers
	}
	eng := engine.Explicit{Workers: workers}
	fmt.Printf("resuming scenario %q from %s (engine=%s, maxstates=%d)\n",
		s.Name, o.path, eng.Name(), s.Explore.MaxStates)
	res, next := eng.VerifyResumable(ctx, s, cp)
	out := o.checkpointFile
	if out == "" {
		out = o.path // refresh the checkpoint in place on a re-cap
	}
	writeCheckpoint(out, next, o.injector)
	return report(res, o.showTrace)
}

// writeCheckpoint persists a capped run's checkpoint (no-op for nil:
// the run finished, so there is nothing to resume). An armed injector
// mangles the bytes on the way out — that is how the corrupt-resume
// path is exercised end to end.
func writeCheckpoint(path string, cp *engine.Checkpoint, injector *chaos.Injector) {
	if cp == nil {
		return
	}
	data, err := engine.EncodeCheckpoint(cp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcacheck: checkpoint:", err)
		return
	}
	data = injector.Mangle("checkpoint.write", data)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mcacheck: checkpoint:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "mcacheck: run capped; checkpoint written to %s (resume with -resume %s -maxstates N)\n", path, path)
}

// runScenarioFile verifies a saved scenario document on its natural
// engine.
func runScenarioFile(ctx context.Context, path string, workers int, checkpointFile string, showTrace bool, injector *chaos.Injector) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	scenario, err := engine.DecodeScenario(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	eng := engine.Auto{Workers: workers}
	fmt.Printf("checking scenario %q from %s (engine=%s)\n",
		scenario.Name, path, eng.EngineFor(scenario).Name())
	if checkpointFile != "" {
		ex, ok := eng.EngineFor(scenario).(engine.Explicit)
		if !ok {
			fmt.Fprintln(os.Stderr, "mcacheck: -checkpoint applies only to explicit-state scenarios")
			return 2
		}
		res, next := ex.VerifyResumable(ctx, scenario, nil)
		writeCheckpoint(checkpointFile, next, injector)
		return report(res, showTrace)
	}
	return report(eng.Verify(ctx, scenario), showTrace)
}

// report prints a unified result in mcacheck's output format and maps
// it to the exit code: 0 holds, 1 violated, 2 error, 3 inconclusive.
func report(res engine.Result, showTrace bool) int {
	sampled := res.Stats.Runs > 0
	relational := res.Stats.Clauses > 0
	switch {
	case sampled:
		fmt.Printf("runs=%d converged=%d deliveries=%d dropped=%d\n",
			res.Stats.Runs, res.Stats.Converged, res.Stats.Deliveries, res.Stats.Dropped)
	case relational:
		fmt.Printf("vars=%d (+%d aux) clauses=%d translate=%v solve=%v\n",
			res.Stats.PrimaryVars, res.Stats.AuxVars, res.Stats.Clauses,
			res.Stats.TranslateTime, res.Stats.SolveTime)
	default:
		fmt.Printf("states=%d depth=%d exhausted=%v\n", res.Stats.States, res.Stats.MaxDepth, res.Stats.Exhausted)
		if res.Stats.MissProb > 0 {
			fmt.Printf("lossy store: per-query miss probability <= %.3g\n", res.Stats.MissProb)
		}
	}
	switch res.Status {
	case engine.StatusHolds:
		if sampled {
			fmt.Printf("RESULT: consensus HELD in all %d simulated runs\n", res.Stats.Runs)
		} else {
			fmt.Println("RESULT: consensus VERIFIED for all message interleavings in scope")
		}
		return 0
	case engine.StatusInconclusive:
		if res.Err != nil {
			fmt.Printf("RESULT: INCONCLUSIVE (%v)\n", res.Err)
		} else {
			fmt.Println("RESULT: INCONCLUSIVE (state budget exhausted; raise -maxstates)")
		}
		return 3
	case engine.StatusError:
		fmt.Fprintln(os.Stderr, res.Err)
		return 2
	}
	switch {
	case sampled:
		fmt.Printf("RESULT: consensus FAILED in %d of %d simulated runs\n",
			res.Stats.Runs-res.Stats.Converged, res.Stats.Runs)
	case relational:
		fmt.Println("RESULT: consensus VIOLATED (counterexample instance within bounds)")
	default:
		fmt.Printf("RESULT: consensus VIOLATED (%v)\n", res.Violation)
	}
	if showTrace && res.Trace != nil {
		fmt.Println(res.Trace.String())
	}
	return 1
}

// runSweep reproduces Result 1 as a batch-runner workload: every policy
// combination becomes one scenario, verified on the worker pool.
func runSweep(ctx context.Context, agents, items int, seed int64, maxStates int) int {
	type combo struct {
		util mca.Utility
		rel  bool
	}
	var combos []combo
	for _, u := range []mca.Utility{mca.SubmodularResidual{}, mca.NonSubmodularSynergy{}} {
		for _, rel := range []bool{false, true} {
			combos = append(combos, combo{u, rel})
		}
	}
	scenarios := make([]engine.Scenario, len(combos))
	for i, c := range combos {
		pol := mca.Policy{Target: items, Utility: c.util, ReleaseOutbid: c.rel, Rebid: mca.RebidOnChange}
		specs, err := buildSpecs(agents, items, pol, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		scenarios[i] = engine.Scenario{
			Name:       fmt.Sprintf("%s/p_RO=%v", c.util.Name(), c.rel),
			AgentSpecs: specs,
			Graph:      graph.Complete(agents),
			Explore:    explore.Options{MaxStates: maxStates},
		}
	}
	results, _ := engine.NewRunner(engine.RunnerOptions{}).Run(ctx, scenarios)

	fmt.Printf("Result 1 policy sweep (%d agents, %d items, complete graph):\n", agents, items)
	fmt.Printf("%-26s %-10s %-12s %s\n", "utility (p_u)", "p_RO", "verdict", "violation")
	code := 0
	for i, res := range results {
		verdict := "converges"
		if res.Status != engine.StatusHolds {
			verdict = "FAILS"
			if combos[i].util.Submodular() || !combos[i].rel {
				code = 1 // unexpected failure
			}
		}
		fmt.Printf("%-26s %-10v %-12s %v\n", combos[i].util.Name(), combos[i].rel, verdict, res.Violation)
	}
	return code
}

// buildSpecs creates mirrored antisymmetric valuations (the Fig. 2
// pattern generalized) so that conflicts genuinely arise.
func buildSpecs(n, items int, pol mca.Policy, seed int64) ([]mca.Config, error) {
	out := make([]mca.Config, n)
	for i := 0; i < n; i++ {
		base := make([]int64, items)
		for j := 0; j < items; j++ {
			base[j] = int64(10 + 5*((i+j)%items) + int(seed%3))
		}
		cfg := mca.Config{ID: mca.AgentID(i), Items: items, Base: base, Policy: pol}
		if _, err := mca.NewAgent(cfg); err != nil {
			return nil, err
		}
		out[i] = cfg
	}
	return out, nil
}

func parseUtility(s string) (mca.Utility, error) {
	switch s {
	case "submodular":
		return mca.SubmodularResidual{}, nil
	case "nonsubmodular":
		return mca.NonSubmodularSynergy{}, nil
	case "flat":
		return mca.FlatUtility{}, nil
	case "escalating":
		return mca.EscalatingUtility{}, nil
	default:
		return nil, fmt.Errorf("unknown utility %q", s)
	}
}

func parseStore(s string) (explore.StoreKind, error) {
	switch s {
	case "exact":
		return explore.StoreExact, nil
	case "bitstate":
		return explore.StoreBitstate, nil
	case "hashcompact":
		return explore.StoreHashCompact, nil
	default:
		return 0, fmt.Errorf("unknown store %q (want exact|bitstate|hashcompact)", s)
	}
}

func parseRebid(s string) (mca.RebidMode, error) {
	switch s {
	case "onchange":
		return mca.RebidOnChange, nil
	case "never":
		return mca.RebidNever, nil
	case "always":
		return mca.RebidAlways, nil
	default:
		return 0, fmt.Errorf("unknown rebid mode %q", s)
	}
}

func parseTopology(s string) (graph.Topology, error) {
	switch s {
	case "line":
		return graph.TopologyLine, nil
	case "ring":
		return graph.TopologyRing, nil
	case "star":
		return graph.TopologyStar, nil
	case "complete":
		return graph.TopologyComplete, nil
	case "random":
		return graph.TopologyRandomConnected, nil
	default:
		return 0, fmt.Errorf("unknown topology %q", s)
	}
}
