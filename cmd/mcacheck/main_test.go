package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mca"
)

func TestParseUtility(t *testing.T) {
	for name, sub := range map[string]bool{
		"submodular": true, "nonsubmodular": false, "flat": true, "escalating": false,
	} {
		u, err := parseUtility(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if u.Submodular() != sub {
			t.Errorf("%s: submodular = %v", name, u.Submodular())
		}
	}
	if _, err := parseUtility("nope"); err == nil {
		t.Error("unknown utility accepted")
	}
}

func TestParseRebid(t *testing.T) {
	cases := map[string]mca.RebidMode{
		"onchange": mca.RebidOnChange,
		"never":    mca.RebidNever,
		"always":   mca.RebidAlways,
	}
	for s, want := range cases {
		got, err := parseRebid(s)
		if err != nil || got != want {
			t.Errorf("%s: got %v, %v", s, got, err)
		}
	}
	if _, err := parseRebid("bogus"); err == nil {
		t.Error("unknown rebid mode accepted")
	}
}

func TestParseTopology(t *testing.T) {
	for s, want := range map[string]graph.Topology{
		"line": graph.TopologyLine, "ring": graph.TopologyRing,
		"star": graph.TopologyStar, "complete": graph.TopologyComplete,
		"random": graph.TopologyRandomConnected,
	} {
		got, err := parseTopology(s)
		if err != nil || got != want {
			t.Errorf("%s: got %v, %v", s, got, err)
		}
	}
	if _, err := parseTopology("torus"); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestRunVerifiedCombination(t *testing.T) {
	code := run([]string{"-agents", "2", "-items", "2", "-utility", "submodular", "-trace=false"})
	if code != 0 {
		t.Fatalf("submodular check exit = %d, want 0", code)
	}
}

func TestRunViolatedCombination(t *testing.T) {
	code := run([]string{"-agents", "2", "-items", "2", "-utility", "nonsubmodular", "-release", "-trace=false"})
	if code != 1 {
		t.Fatalf("nonsubmodular+release exit = %d, want 1", code)
	}
}

func TestRunSweepMatchesResult1(t *testing.T) {
	if code := run([]string{"-sweep", "-agents", "2", "-items", "2"}); code != 0 {
		t.Fatalf("sweep exit = %d, want 0 (expected combinations only)", code)
	}
}

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-utility", "bogus"},
		{"-rebid", "bogus"},
		{"-topology", "bogus"},
		{"-not-a-flag"},
	} {
		if code := run(args); code != 2 {
			t.Fatalf("args %v: exit = %d, want 2", args, code)
		}
	}
}

func TestBuildSpecs(t *testing.T) {
	pol := mca.Policy{Target: 2, Utility: mca.FlatUtility{}, Rebid: mca.RebidOnChange}
	specs, err := buildSpecs(3, 2, pol, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("specs = %d", len(specs))
	}
	for i, cfg := range specs {
		if cfg.ID != mca.AgentID(i) {
			t.Fatalf("spec %d has id %d", i, cfg.ID)
		}
	}
}

func TestRunSimulationEngineSelected(t *testing.T) {
	code := run([]string{"-agents", "2", "-items", "2", "-drop", "0.99", "-runs", "4", "-trace=false"})
	if code != 1 {
		t.Fatalf("lossy simulation exit = %d, want 1 (non-convergence)", code)
	}
}

func writeScenario(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunScenarioFile(t *testing.T) {
	holds := `{
  "version": 1,
  "name": "file-demo",
  "agents": [
    {"id": 0, "items": 2, "base": [10, 15],
     "policy": {"target": 2, "utility": {"kind": "submodular-residual"}, "release_outbid": true, "rebid": "on-change"}},
    {"id": 1, "items": 2, "base": [15, 10],
     "policy": {"target": 2, "utility": {"kind": "submodular-residual"}, "release_outbid": true, "rebid": "on-change"}}
  ],
  "graph": {"nodes": 2, "edges": [{"u": 0, "v": 1}]}
}`
	if code := run([]string{"-scenario", writeScenario(t, holds), "-trace=false"}); code != 0 {
		t.Fatalf("holds scenario exit = %d, want 0", code)
	}
	violated := strings.ReplaceAll(holds, "submodular-residual", "non-submodular-synergy")
	if code := run([]string{"-scenario", writeScenario(t, violated), "-trace=false"}); code != 1 {
		t.Fatalf("violated scenario exit = %d, want 1", code)
	}
}

func TestRunScenarioFileErrors(t *testing.T) {
	if code := run([]string{"-scenario", "no-such-file.json"}); code != 2 {
		t.Fatalf("missing file exit = %d, want 2", code)
	}
	if code := run([]string{"-scenario", writeScenario(t, `{"version": 42}`)}); code != 2 {
		t.Fatalf("bad version exit = %d, want 2", code)
	}
}

func TestRunParallelWorkers(t *testing.T) {
	code := run([]string{"-agents", "2", "-items", "2", "-utility", "submodular", "-workers", "2", "-trace=false"})
	if code != 0 {
		t.Fatalf("parallel check exit = %d, want 0", code)
	}
}
