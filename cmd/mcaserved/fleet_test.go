package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
)

// startRole boots one in-process mcaserved in the given role and
// returns its base URL.
func startRole(t *testing.T, cfg serverConfig) (*httptest.Server, *server) {
	t.Helper()
	s := mustServer(t, cfg)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv, s
}

// sweepNDJSON posts a sweep and splits the NDJSON stream into result
// lines and the decoded summary. A missing summary line fails the test
// because it means the stream aborted.
func sweepNDJSON(t *testing.T, url, body string) ([]string, engine.Summary) {
	t.Helper()
	resp := postJSON(t, url+"/sweep", body)
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("sweep status %d: %s", resp.StatusCode, buf.String())
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 || !strings.HasPrefix(lines[len(lines)-1], `{"summary":`) {
		t.Fatalf("stream has no summary line: %q", lines)
	}
	last := lines[len(lines)-1]
	sum, err := engine.DecodeSummary([]byte(strings.TrimSuffix(strings.TrimPrefix(last, `{"summary":`), "}")))
	if err != nil {
		t.Fatal(err)
	}
	return lines[:len(lines)-1], sum
}

// summaryBytes canonicalizes a summary for byte comparison (wall time
// is a measurement, not part of the determinism contract).
func summaryBytes(t *testing.T, sum engine.Summary) string {
	t.Helper()
	sum.Wall = 0
	data, err := engine.EncodeSummary(&sum)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

// TestFleetRolesEndToEnd is the full topology acceptance test: a
// coordinator fronting two worker processes that share a remote cache
// peer. The first sweep must match a standalone server byte for byte
// (wall aside); the second must be served from the shared cache, with
// the remote tier and the fleet counters visible on /metrics.
func TestFleetRolesEndToEnd(t *testing.T) {
	// The shared cache peer every worker layers behind its local tiers.
	peerCache, err := cache.New(cache.Options{Capacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	peerSrv, _ := startRole(t, serverConfig{Cache: peerCache, CacheCapacity: 256, PeerCache: true})

	// startFleet boots a fresh coordinator + two workers over the shared
	// peer. Booting it twice models a full fleet restart: the second
	// generation has empty local tiers and can only answer from the peer.
	startFleet := func() (coordSrv *httptest.Server, workers []*httptest.Server, workerCaches []*cache.Cache) {
		workerURLs := make([]string, 2)
		workers = make([]*httptest.Server, 2)
		workerCaches = make([]*cache.Cache, 2)
		for i := range workerURLs {
			wc, err := cache.New(cache.Options{Capacity: 64, RemoteURL: peerSrv.URL + "/cache/entry"})
			if err != nil {
				t.Fatal(err)
			}
			srv, _ := startRole(t, serverConfig{Role: "worker", Cache: wc, FleetSlots: 2})
			workers[i], workerURLs[i], workerCaches[i] = srv, srv.URL, wc
		}
		coordSrv, _ = startRole(t, serverConfig{Role: "coordinator", Peers: workerURLs, FleetSlots: 2})
		return coordSrv, workers, workerCaches
	}

	standaloneSrv, _ := testServer(t)
	_, wantSum := sweepNDJSON(t, standaloneSrv.URL, sweepRequest)

	coldCoord, _, coldCaches := startFleet()
	coldLines, coldSum := sweepNDJSON(t, coldCoord.URL, sweepRequest)
	if got, want := summaryBytes(t, coldSum), summaryBytes(t, wantSum); got != want {
		t.Fatalf("fleet summary diverged from standalone:\n got %s\nwant %s", got, want)
	}
	if coldSum.CacheHits != 0 {
		t.Fatalf("cold fleet sweep reported %d cache hits", coldSum.CacheHits)
	}
	// Peer propagation is asynchronous: settle the cold generation's
	// queues so the warm pass sees a fully warmed peer.
	for _, c := range coldCaches {
		c.WaitRemotePuts()
	}

	// Pass two on a restarted fleet: everything conclusive is answered
	// from the shared tier.
	coordSrv, workers, warmCaches := startFleet()
	warmLines, warmSum := sweepNDJSON(t, coordSrv.URL, sweepRequest)
	if len(warmLines) != len(coldLines) {
		t.Fatalf("warm pass streamed %d lines, cold %d", len(warmLines), len(coldLines))
	}
	conclusive := warmSum.Holds + warmSum.Violated
	if warmSum.CacheHits != conclusive {
		t.Fatalf("warm pass: %d cache hits, want %d", warmSum.CacheHits, conclusive)
	}
	warmNoHits := warmSum
	warmNoHits.CacheHits = 0
	if got, want := summaryBytes(t, warmNoHits), summaryBytes(t, wantSum); got != want {
		t.Fatalf("warm summary diverged:\n got %s\nwant %s", got, want)
	}

	// The peer's store took every conclusive verdict exactly once.
	if st := peerCache.Stats(); st.Puts != uint64(conclusive) {
		t.Fatalf("peer cache stats %+v, want %d puts", st, conclusive)
	}
	// The cold generation pushed every conclusive verdict to the peer;
	// the warm generation, with empty local tiers, pulled every answer
	// back from it.
	var remoteHits, remotePuts uint64
	for i := range coldCaches {
		remotePuts += coldCaches[i].Stats().RemotePuts
		remoteHits += warmCaches[i].Stats().RemoteHits
	}
	if remotePuts != uint64(conclusive) {
		t.Fatalf("cold workers pushed %d results to the peer, want %d", remotePuts, conclusive)
	}
	if remoteHits != uint64(conclusive) {
		t.Fatalf("warm workers answered %d units from the peer, want %d", remoteHits, conclusive)
	}
	// /cache/stats on a warm worker reports the same remote traffic.
	var viaHTTP cache.Stats
	resp, err := http.Get(workers[0].URL + "/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&viaHTTP)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if viaHTTP.RemoteHits != warmCaches[0].Stats().RemoteHits {
		t.Fatalf("/cache/stats remote hits %d != direct %d", viaHTTP.RemoteHits, warmCaches[0].Stats().RemoteHits)
	}
	code, metricsBody := getBody(t, workers[0].URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, line := range []string{
		`mcaserved_cache_operations_total{kind="hit_remote"}`,
		`mcaserved_worker_units_total`,
		`mcaserved_requests_total{path="/fleet/work",code="200"}`,
	} {
		if !strings.Contains(metricsBody, line) {
			t.Fatalf("worker /metrics missing %q:\n%s", line, metricsBody)
		}
	}

	// The coordinator's /metrics carries the fleet dispatch counters,
	// and /fleet/status sees both workers healthy.
	code, metricsBody = getBody(t, coordSrv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("coordinator /metrics status %d", code)
	}
	for _, line := range []string{
		`mcaserved_fleet_dispatch_total{kind="completed"}`,
		`mcaserved_fleet_worker_healthy`,
		`mcaserved_requests_total{path="/sweep",code="200"} 1`,
	} {
		if !strings.Contains(metricsBody, line) {
			t.Fatalf("coordinator /metrics missing %q:\n%s", line, metricsBody)
		}
	}
	code, statusBody := getBody(t, coordSrv.URL+"/fleet/status")
	if code != http.StatusOK || strings.Contains(statusBody, `"healthy":false`) {
		t.Fatalf("/fleet/status %d: %s", code, statusBody)
	}
}

// TestQuotaShedding drives the per-tenant token buckets through the
// wire: a tenant that exhausts its burst gets 429 + Retry-After while
// another tenant is untouched, and the shed shows up on /metrics.
func TestQuotaShedding(t *testing.T) {
	srv, _ := startRole(t, serverConfig{QuotaRate: 0.001, QuotaBurst: 2})

	post := func(tenant string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/verify", strings.NewReader(scenarioDoc))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	for i := 0; i < 2; i++ {
		if resp := post("acme"); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst: status %d", i, resp.StatusCode)
		}
	}
	resp := post("acme")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Another tenant has its own bucket.
	if resp := post("globex"); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status %d", resp.StatusCode)
	}
	if _, body := getBody(t, srv.URL+"/metrics"); !strings.Contains(body, `mcaserved_shed_total{reason="quota"} 1`) {
		t.Fatalf("/metrics missing quota shed:\n%s", body)
	}
}

// TestQuotaRefill pins the bucket arithmetic with a fake clock.
func TestQuotaRefill(t *testing.T) {
	q := newQuotaTable(2, 2) // 2 tokens/s, burst 2
	now := time.Unix(0, 0)
	q.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := q.allow("t"); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	ok, retry := q.allow("t")
	if ok {
		t.Fatal("empty bucket allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry %v, want within (0, 1s]", retry)
	}
	now = now.Add(500 * time.Millisecond) // one token accrues
	if ok, _ := q.allow("t"); !ok {
		t.Fatal("refilled token denied")
	}
	if ok, _ := q.allow("t"); ok {
		t.Fatal("second token appeared from a 500ms refill at 2/s")
	}
	now = now.Add(time.Hour) // refill clamps at burst
	for i := 0; i < 2; i++ {
		if ok, _ := q.allow("t"); !ok {
			t.Fatalf("post-clamp token %d denied", i)
		}
	}
	if ok, _ := q.allow("t"); ok {
		t.Fatal("burst clamp exceeded")
	}
}

// TestInFlightShedding exercises the global admission cap at the gate:
// with one slot occupied, the next request sheds with 429.
func TestInFlightShedding(t *testing.T) {
	s := mustServer(t, serverConfig{MaxInFlight: 1})
	release := make(chan struct{})
	entered := make(chan struct{}, 2)
	h := s.gate(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		h(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/sweep", nil))
	}()
	<-entered

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodPost, "/sweep", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(release)
	<-done

	// The freed slot admits again.
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodPost, "/sweep", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-release status %d", rec.Code)
	}
}

// TestRoleValidation pins the construction errors.
func TestRoleValidation(t *testing.T) {
	if _, err := newServer(serverConfig{Role: "conductor"}); err == nil {
		t.Fatal("unknown role accepted")
	}
	if _, err := newServer(serverConfig{Role: "coordinator"}); err == nil {
		t.Fatal("coordinator without peers accepted")
	}
}

// TestCacheEntryEndpointMounted smoke-tests the peer protocol route:
// absent unless opted in with PeerCache, served (with key validation)
// when opted in, and behind the shared secret when one is configured.
func TestCacheEntryEndpointMounted(t *testing.T) {
	key := strings.Repeat("ab", 32)

	// Default servers do not expose the peer protocol at all: its PUT
	// verb stores unverifiable result documents.
	plain, _ := testServer(t)
	if code, _ := getBody(t, plain.URL+"/cache/entry/"+key); code != http.StatusNotFound {
		t.Fatalf("peer endpoint without -peercache: status %d, want mux 404", code)
	}
	if code, _ := getBody(t, plain.URL+"/cache/entry/nope"); code != http.StatusNotFound {
		t.Fatalf("peer endpoint without -peercache: status %d, want mux 404", code)
	}

	c, err := cache.New(cache.Options{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := startRole(t, serverConfig{Cache: c, PeerCache: true})
	if code, _ := getBody(t, srv.URL+"/cache/entry/"+key); code != http.StatusNotFound {
		t.Fatalf("absent key: status %d, want 404", code)
	}
	if code, _ := getBody(t, srv.URL+"/cache/entry/nope"); code != http.StatusBadRequest {
		t.Fatalf("bad key: status %d, want 400", code)
	}

	sealed, _ := startRole(t, serverConfig{Cache: c, PeerCache: true, CacheSecret: "s3cr3t"})
	if code, _ := getBody(t, sealed.URL+"/cache/entry/"+key); code != http.StatusUnauthorized {
		t.Fatalf("secret-protected endpoint without header: status %d, want 401", code)
	}
}

// TestFleetWorkExemptFromTenantQuota pins the admission split: the
// coordinator's dispatches carry no X-Tenant, so /fleet/work must not
// be folded into the anonymous quota bucket — otherwise enabling
// -quotarate on a worker mass-429s all intra-fleet traffic.
func TestFleetWorkExemptFromTenantQuota(t *testing.T) {
	srv, _ := startRole(t, serverConfig{Role: "worker", QuotaRate: 0.001, QuotaBurst: 1})

	// Well past the burst of 1: every request must reach the handler
	// (400: not a work unit), never the quota (429).
	for i := 0; i < 4; i++ {
		resp := postJSON(t, srv.URL+"/fleet/work", "{}")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("dispatch %d: status %d, want 400 from the handler (429 means quota applied)", i, resp.StatusCode)
		}
	}
	// The same server still quotas client-facing endpoints.
	if resp := postJSON(t, srv.URL+"/verify", scenarioDoc); resp.StatusCode != http.StatusOK {
		t.Fatalf("first /verify: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/verify", scenarioDoc); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst /verify: status %d, want 429", resp.StatusCode)
	}
}

// TestMetricsRequestAccounting checks the request counters and latency
// summaries the middleware records.
func TestMetricsRequestAccounting(t *testing.T) {
	srv, _ := testServer(t)
	postJSON(t, srv.URL+"/verify", scenarioDoc)
	postJSON(t, srv.URL+"/verify", "{not json")
	if code, _ := getBody(t, srv.URL+"/nonexistent"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d", code)
	}
	_, body := getBody(t, srv.URL+"/metrics")
	for _, line := range []string{
		`mcaserved_requests_total{path="/verify",code="200"} 1`,
		`mcaserved_requests_total{path="/verify",code="400"} 1`,
		`mcaserved_requests_total{path="other",code="404"} 1`,
		`mcaserved_request_seconds_count{path="/verify"} 2`,
		`mcaserved_cache_entries 1`,
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("/metrics missing %q:\n%s", line, body)
		}
	}
}
