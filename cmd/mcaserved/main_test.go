package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
)

const scenarioDoc = `{
  "version": 1,
  "name": "served-demo",
  "agents": [
    {"id": 0, "items": 2, "base": [10, 15],
     "policy": {"target": 2, "utility": {"kind": "submodular-residual"}, "release_outbid": true, "rebid": "on-change"}},
    {"id": 1, "items": 2, "base": [15, 10],
     "policy": {"target": 2, "utility": {"kind": "submodular-residual"}, "release_outbid": true, "rebid": "on-change"}}
  ],
  "graph": {"nodes": 2, "edges": [{"u": 0, "v": 1}]}
}`

const oscillatingDoc = `{
  "version": 1,
  "name": "served-oscillation",
  "agents": [
    {"id": 0, "items": 2, "base": [10, 15],
     "policy": {"target": 2, "utility": {"kind": "non-submodular-synergy"}, "release_outbid": true, "rebid": "on-change"}},
    {"id": 1, "items": 2, "base": [15, 10],
     "policy": {"target": 2, "utility": {"kind": "non-submodular-synergy"}, "release_outbid": true, "rebid": "on-change"}}
  ],
  "graph": {"nodes": 2, "edges": [{"u": 0, "v": 1}]}
}`

const sweepRequest = `{
  "version": 1,
  "name": "served-sweep",
  "base": {
    "name": "base",
    "agents": [
      {"id": 0, "items": 2, "base": [10, 15],
       "policy": {"target": 2, "utility": {"kind": "submodular-residual"}, "release_outbid": true, "rebid": "on-change"}},
      {"id": 1, "items": 2, "base": [15, 10],
       "policy": {"target": 2, "utility": {"kind": "submodular-residual"}, "release_outbid": true, "rebid": "on-change"}}
    ],
    "graph": {"nodes": 2, "edges": [{"u": 0, "v": 1}]}
  },
  "axes": [
    {"axis": "policy", "variants": [
      {"name": "honest", "scenario": {}},
      {"name": "greedy", "scenario": {"agents": [
        {"id": 0, "items": 2, "base": [10, 15],
         "policy": {"target": 2, "utility": {"kind": "non-submodular-synergy"}, "release_outbid": true, "rebid": "on-change"}},
        {"id": 1, "items": 2, "base": [15, 10],
         "policy": {"target": 2, "utility": {"kind": "non-submodular-synergy"}, "release_outbid": true, "rebid": "on-change"}}
      ]}}
    ]},
    {"axis": "mode", "variants": [
      {"name": "plain", "scenario": {}},
      {"name": "dup", "scenario": {"explore": {"duplicate_deliveries": true}}}
    ]}
  ]
}`

// mustServer builds the role-aware handler or fails the test.
func mustServer(t *testing.T, cfg serverConfig) *server {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testServer(t *testing.T) (*httptest.Server, *cache.Cache) {
	t.Helper()
	c, err := cache.New(cache.Options{Capacity: 128})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mustServer(t, serverConfig{
		Workers:        2,
		Cache:          c,
		DefaultTimeout: 30 * time.Second,
	}))
	t.Cleanup(srv.Close)
	return srv, c
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestVerifyEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	for _, tc := range []struct {
		doc  string
		want engine.Status
	}{
		{scenarioDoc, engine.StatusHolds},
		{oscillatingDoc, engine.StatusViolated},
	} {
		resp := postJSON(t, srv.URL+"/verify", tc.doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		res, err := engine.DecodeResult(buf.Bytes())
		if err != nil {
			t.Fatalf("decode: %v\n%s", err, buf.Bytes())
		}
		if res.Status != tc.want {
			t.Fatalf("verdict %v, want %v", res.Status, tc.want)
		}
		if tc.want == engine.StatusViolated && res.Trace == nil {
			t.Fatal("violated result lost its counterexample trace")
		}
	}
}

func TestVerifyCacheRoundTrip(t *testing.T) {
	srv, c := testServer(t)
	first := postJSON(t, srv.URL+"/verify", scenarioDoc)
	var buf bytes.Buffer
	buf.ReadFrom(first.Body)
	r1, err := engine.DecodeResult(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first request served from an empty cache")
	}

	second := postJSON(t, srv.URL+"/verify", scenarioDoc)
	buf.Reset()
	buf.ReadFrom(second.Body)
	r2, err := engine.DecodeResult(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("repeat request missed the cache")
	}
	if r2.Status != r1.Status || r2.Stats.States != r1.Stats.States {
		t.Fatalf("cached verdict differs: %+v vs %+v", r2, r1)
	}
	if st := c.Stats(); st.Hits != 1 || st.Puts != 1 {
		t.Fatalf("cache stats %+v", st)
	}

	// The stats endpoint reports the same counters.
	resp, err := http.Get(srv.URL + "/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st cache.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("/cache/stats reported %+v", st)
	}
}

func TestVerifyRejectsBadInput(t *testing.T) {
	srv, _ := testServer(t)
	for name, tc := range map[string]struct {
		path string
		body string
	}{
		"not-json":       {"/verify", "hello"},
		"unknown-field":  {"/verify", `{"version":1,"mystery":2}`},
		"wrong-version":  {"/verify", `{"version":9}`},
		"bad-engine":     {"/verify?engine=quantum", scenarioDoc},
		"bad-workers":    {"/verify?workers=lots", scenarioDoc},
		"bad-timeout":    {"/verify?timeout=-3", scenarioDoc},
		"sweep-bad-base": {"/sweep", `{"version":1}`},
	} {
		t.Run(name, func(t *testing.T) {
			resp := postJSON(t, srv.URL+tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var e map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
				t.Fatalf("error body missing: %v %v", e, err)
			}
		})
	}
	resp, err := http.Get(srv.URL + "/verify")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /verify: status %d, want 405", resp.StatusCode)
	}
}

func TestOversizedBodyIs413(t *testing.T) {
	c, err := cache.New(cache.Options{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mustServer(t, serverConfig{Cache: c, MaxBody: 64}))
	t.Cleanup(srv.Close)
	resp := postJSON(t, srv.URL+"/verify", scenarioDoc)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestSweepEndpointStreamsNDJSON(t *testing.T) {
	srv, _ := testServer(t)
	resp := postJSON(t, srv.URL+"/sweep", sweepRequest)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var resultLines int
	var sawSummary bool
	holds, violated := 0, 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.HasPrefix(line, []byte(`{"summary":`)) {
			var wrapper struct {
				Summary json.RawMessage `json:"summary"`
			}
			if err := json.Unmarshal(line, &wrapper); err != nil {
				t.Fatalf("summary line: %v\n%s", err, line)
			}
			sum, err := engine.DecodeSummary(wrapper.Summary)
			if err != nil {
				t.Fatalf("summary: %v\n%s", err, wrapper.Summary)
			}
			if sum.Total != 4 || sum.Holds != holds || sum.Violated != violated {
				t.Fatalf("summary %+v (saw %d holds, %d violated)", sum, holds, violated)
			}
			sawSummary = true
			continue
		}
		res, err := engine.DecodeResult(line)
		if err != nil {
			t.Fatalf("result line: %v\n%s", err, line)
		}
		resultLines++
		switch res.Status {
		case engine.StatusHolds:
			holds++
		case engine.StatusViolated:
			violated++
		default:
			t.Fatalf("cell %q: %v (err %v)", res.Scenario, res.Status, res.Err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if resultLines != 4 || !sawSummary {
		t.Fatalf("stream had %d result lines, summary=%v", resultLines, sawSummary)
	}
	// The honest cells hold, the greedy (non-submodular + release) cells
	// oscillate — Result 1 served over HTTP.
	if holds != 2 || violated != 2 {
		t.Fatalf("holds=%d violated=%d, want 2/2", holds, violated)
	}
}

// TestSweepWarmPassIsCached repeats the sweep and expects every
// conclusive cell to come back as a cache hit.
func TestSweepWarmPassIsCached(t *testing.T) {
	srv, _ := testServer(t)
	postJSON(t, srv.URL+"/sweep", sweepRequest).Body.Close()
	resp := postJSON(t, srv.URL+"/sweep", sweepRequest)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.HasPrefix(line, []byte(`{"summary":`)) {
			var wrapper struct {
				Summary json.RawMessage `json:"summary"`
			}
			if err := json.Unmarshal(line, &wrapper); err != nil {
				t.Fatal(err)
			}
			sum, err := engine.DecodeSummary(wrapper.Summary)
			if err != nil {
				t.Fatal(err)
			}
			if sum.CacheHits != sum.Total {
				t.Fatalf("warm sweep: %d hits of %d", sum.CacheHits, sum.Total)
			}
			return
		}
		res, err := engine.DecodeResult(line)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatalf("cell %q not served from cache", res.Scenario)
		}
	}
	t.Fatal("no summary line")
}

// TestVerifyTimeoutReportsInconclusive drives a heavyweight scenario
// with a tiny per-request timeout through the cancellation plumbing.
func TestVerifyTimeoutReportsInconclusive(t *testing.T) {
	srv, c := testServer(t)
	heavy := `{
  "version": 1,
  "name": "heavy",
  "agents": [
    {"id": 0, "items": 3, "base": [10, 15, 20],
     "policy": {"target": 3, "utility": {"kind": "submodular-residual"}, "release_outbid": true, "rebid": "on-change"}},
    {"id": 1, "items": 3, "base": [20, 10, 15],
     "policy": {"target": 3, "utility": {"kind": "submodular-residual"}, "release_outbid": true, "rebid": "on-change"}},
    {"id": 2, "items": 3, "base": [15, 20, 10],
     "policy": {"target": 3, "utility": {"kind": "submodular-residual"}, "release_outbid": true, "rebid": "on-change"}}
  ],
  "graph": {"nodes": 3, "edges": [{"u": 0, "v": 1}, {"u": 1, "v": 2}, {"u": 0, "v": 2}]}
}`
	resp := postJSON(t, srv.URL+"/verify?timeout=1ms", heavy)
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	res, err := engine.DecodeResult(buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.Bytes())
	}
	if res.Status != engine.StatusInconclusive {
		t.Fatalf("status %v, want inconclusive", res.Status)
	}
	if c.Len() != 0 {
		t.Fatal("inconclusive result cached")
	}
}

// TestGenerateEndpointStreamsNDJSON drives the fuzzing pipeline over
// HTTP: a pinned profile generates a small corpus, every scenario is
// verified on the requested panel, and the stream ends with an
// agreeing summary.
func TestGenerateEndpointStreamsNDJSON(t *testing.T) {
	srv, _ := testServer(t)
	profile := `{"agents":{"min":2,"max":3},"max_states":{"min":2000,"max":8000},"fault_prob":0.4}`
	resp, err := http.Post(srv.URL+"/generate?seed=9&n=8&engines=explicit,simulation", "application/json", strings.NewReader(profile))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	type legLine struct {
		Engine string          `json:"engine"`
		Class  string          `json:"class"`
		Result json.RawMessage `json:"result"`
	}
	type diffLine struct {
		Index    int             `json:"index"`
		Scenario json.RawMessage `json:"scenario"`
		Agree    bool            `json:"agree"`
		Reasons  []string        `json:"reasons"`
		Legs     []legLine       `json:"legs"`
	}
	seen := map[int]bool{}
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.HasPrefix(line, []byte(`{"summary":`)) {
			var wrapper struct {
				Summary map[string]int `json:"summary"`
			}
			if err := json.Unmarshal(line, &wrapper); err != nil {
				t.Fatalf("summary line: %v\n%s", err, line)
			}
			if wrapper.Summary["scenarios"] != 8 || wrapper.Summary["disagreements"] != 0 {
				t.Fatalf("summary %v", wrapper.Summary)
			}
			sawSummary = true
			continue
		}
		var dl diffLine
		if err := json.Unmarshal(line, &dl); err != nil {
			t.Fatalf("diff line: %v\n%s", err, line)
		}
		if !dl.Agree {
			t.Fatalf("scenario %d disagrees: %v", dl.Index, dl.Reasons)
		}
		// Each embedded scenario is a full canonical document.
		s, err := engine.DecodeScenario(dl.Scenario)
		if err != nil {
			t.Fatalf("embedded scenario: %v\n%s", err, dl.Scenario)
		}
		if n := len(s.AgentSpecs); n < 2 || n > 3 {
			t.Fatalf("scenario %d has %d agents, profile pinned 2..3", dl.Index, n)
		}
		if len(dl.Legs) == 0 {
			t.Fatalf("scenario %d has no legs", dl.Index)
		}
		for _, l := range dl.Legs {
			if _, err := engine.DecodeResult(l.Result); err != nil {
				t.Fatalf("leg result: %v\n%s", err, l.Result)
			}
		}
		seen[dl.Index] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 || !sawSummary {
		t.Fatalf("stream had %d scenario lines, summary=%v", len(seen), sawSummary)
	}
}

// TestGenerateCoverageStreamsRoundStats drives the coverage-guided
// loop over HTTP: one stats line per round with monotone cumulative
// counters, then a summary whose totals match the streamed rounds.
func TestGenerateCoverageStreamsRoundStats(t *testing.T) {
	srv, _ := testServer(t)
	profile := `{"agents":{"min":2,"max":3},"max_states":{"min":1000,"max":8000}}`
	resp, err := http.Post(srv.URL+"/generate?coverage=1&seed=3&rounds=3&n=12", "application/json", strings.NewReader(profile))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	type roundLine struct {
		Round         int `json:"round"`
		Scenarios     int `json:"scenarios"`
		NewBuckets    int `json:"new_buckets"`
		Buckets       int `json:"buckets"`
		Corpus        int `json:"corpus"`
		Disagreements int `json:"disagreements"`
	}
	var rounds []roundLine
	var summary map[string]int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.HasPrefix(line, []byte(`{"summary":`)) {
			var wrapper struct {
				Summary map[string]int `json:"summary"`
			}
			if err := json.Unmarshal(line, &wrapper); err != nil {
				t.Fatalf("summary line: %v\n%s", err, line)
			}
			summary = wrapper.Summary
			continue
		}
		var rl roundLine
		if err := json.Unmarshal(line, &rl); err != nil {
			t.Fatalf("round line: %v\n%s", err, line)
		}
		rounds = append(rounds, rl)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 {
		t.Fatalf("streamed %d round lines, want 3", len(rounds))
	}
	for i, rl := range rounds {
		if rl.Round != i || rl.Scenarios != 4 {
			t.Fatalf("round line %d malformed: %+v", i, rl)
		}
		if i > 0 && rl.Buckets < rounds[i-1].Buckets {
			t.Fatalf("cumulative buckets regressed: %+v after %+v", rl, rounds[i-1])
		}
	}
	if summary == nil {
		t.Fatal("no summary line")
	}
	last := rounds[len(rounds)-1]
	if summary["rounds"] != 3 || summary["scenarios"] != 12 ||
		summary["buckets"] != last.Buckets || summary["corpus"] != last.Corpus {
		t.Fatalf("summary %v disagrees with streamed rounds (last %+v)", summary, last)
	}
	if summary["disagreements"] != 0 {
		t.Fatalf("unexpected disagreements: %v", summary)
	}
}

// An empty body means the default profile; bad inputs are 400s.
func TestGenerateEndpointValidation(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Post(srv.URL+"/generate?seed=1&n=2&engines=simulation", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty body: status %d", resp.StatusCode)
	}
	for _, url := range []string{
		srv.URL + "/generate?n=999999",          // over the corpus cap
		srv.URL + "/generate?seed=banana",       // bad seed
		srv.URL + "/generate?engines=warp",      // unknown engine
		srv.URL + "/generate?n=2&timeout=bogus", // bad timeout
		srv.URL + "/generate?coverage=maybe",    // bad coverage flag
		srv.URL + "/generate?coverage=1&rounds=0",
		srv.URL + "/generate?n=4&rounds=2", // rounds without coverage
	} {
		resp, err := http.Post(url, "application/json", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
	get, err := http.Get(srv.URL + "/generate")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /generate: status %d", get.StatusCode)
	}
	// A malformed profile body is rejected before any work happens.
	bad := postJSON(t, srv.URL+"/generate", `{"agents":{"min":5,"max":2}}`)
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted range: status %d", bad.StatusCode)
	}
}
