package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
)

// cappableDoc is the line3 fixture (503 states, holds) with a budget
// knob: small budgets cap, 30000 completes.
func cappableDoc(maxStates int) string {
	return fmt.Sprintf(`{
  "version": 1,
  "name": "served-resumable",
  "agents": [
    {"id": 0, "items": 2, "base": [10, 0],
     "policy": {"target": 2, "utility": {"kind": "flat"}, "rebid": "on-change"}},
    {"id": 1, "items": 2, "base": [0, 20],
     "policy": {"target": 2, "utility": {"kind": "flat"}, "rebid": "on-change"}},
    {"id": 2, "items": 2, "base": [5, 5],
     "policy": {"target": 2, "utility": {"kind": "flat"}, "rebid": "on-change"}}
  ],
  "graph": {"nodes": 3, "edges": [{"u": 0, "v": 1}, {"u": 1, "v": 2}]},
  "explore": {"max_states": %d}
}`, maxStates)
}

type resumeEnvelope struct {
	Resume string          `json:"resume"`
	Result json.RawMessage `json:"result"`
}

func decodeEnvelope(t *testing.T, resp *http.Response) resumeEnvelope {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var env resumeEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	return env
}

// resultNoWall canonicalizes an encoded result for byte comparison.
func resultNoWall(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	res, err := engine.DecodeResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	res.Stats.Wall = 0
	out, err := engine.EncodeResult(&res)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestVerifyCheckpointResumeRoundTrip(t *testing.T) {
	srv, _ := testServer(t)

	// Uninterrupted reference at the full budget: no token comes back.
	full := decodeEnvelope(t, postJSON(t, srv.URL+"/verify?checkpoint=1&workers=2", cappableDoc(30000)))
	if full.Resume != "" {
		t.Fatalf("completed run returned a resume token %q", full.Resume)
	}

	// Capped run: token plus an inconclusive capped result.
	capped := decodeEnvelope(t, postJSON(t, srv.URL+"/verify?checkpoint=1&workers=2", cappableDoc(100)))
	if capped.Resume == "" {
		t.Fatal("capped run returned no resume token")
	}
	cres, err := engine.DecodeResult(capped.Result)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Status != engine.StatusInconclusive || !cres.Stats.Capped {
		t.Fatalf("capped run: status=%v capped=%v", cres.Status, cres.Stats.Capped)
	}

	// Resume with a raised budget: same result as the uninterrupted run.
	resumed := decodeEnvelope(t, postJSON(t, srv.URL+"/verify",
		fmt.Sprintf(`{"resume": %q, "max_states": 30000}`, capped.Resume)))
	if resumed.Resume != "" {
		t.Fatalf("completed resume returned a new token %q", resumed.Resume)
	}
	if got, want := resultNoWall(t, resumed.Result), resultNoWall(t, full.Result); got != want {
		t.Fatalf("resumed result diverged:\n%s\nvs uninterrupted:\n%s", got, want)
	}

	// Tokens are single use: the second attempt is a 404.
	resp := postJSON(t, srv.URL+"/verify", fmt.Sprintf(`{"resume": %q, "max_states": 30000}`, capped.Resume))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("spent token: status %d, want 404", resp.StatusCode)
	}
}

func TestVerifyResumeUnknownToken(t *testing.T) {
	srv, _ := testServer(t)
	resp := postJSON(t, srv.URL+"/verify", `{"resume": "deadbeef", "max_states": 1000}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestVerifyCheckpointRejectsNonExplicitEngine(t *testing.T) {
	srv, _ := testServer(t)
	resp := postJSON(t, srv.URL+"/verify?checkpoint=1&engine=simulation", cappableDoc(100))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// A capped run that is never resumed must not leak table capacity
// forever: the bounded store evicts the oldest token once full.
func TestResumeStoreEvictsOldest(t *testing.T) {
	c, err := cache.New(cache.Options{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := mustServer(t, serverConfig{Cache: c, DefaultTimeout: 30 * time.Second})
	s.resumes = newResumeStore(2)
	srv := httptest.NewServer(s)
	defer srv.Close()

	var tokens []string
	for i := 0; i < 3; i++ {
		env := decodeEnvelope(t, postJSON(t, srv.URL+"/verify?checkpoint=1&workers=2", cappableDoc(100)))
		if env.Resume == "" {
			t.Fatal("no token")
		}
		tokens = append(tokens, env.Resume)
	}
	if n := s.resumes.len(); n != 2 {
		t.Fatalf("store holds %d tokens, want 2", n)
	}
	resp := postJSON(t, srv.URL+"/verify", fmt.Sprintf(`{"resume": %q}`, tokens[0]))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted token: status %d, want 404", resp.StatusCode)
	}
	resumed := decodeEnvelope(t, postJSON(t, srv.URL+"/verify",
		fmt.Sprintf(`{"resume": %q, "max_states": 30000}`, tokens[2])))
	res, err := engine.DecodeResult(resumed.Result)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != engine.StatusHolds {
		t.Fatalf("resumed newest token: status=%v", res.Status)
	}
}
