package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
)

// TestChaosAndBreakerMetricsExposed arms a chaos-injecting coordinator
// over a clean worker and pins the observability surface: the sweep
// still completes, and /metrics reports the per-worker breaker state,
// the breaker fast-fail counter, the chaos injection counters, and the
// cache corruption-quarantine counter — the rows an operator watches
// during a chaos run.
func TestChaosAndBreakerMetricsExposed(t *testing.T) {
	wc, err := cache.New(cache.Options{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	workerSrv, _ := startRole(t, serverConfig{Role: "worker", Cache: wc, CacheCapacity: 64, FleetSlots: 2})

	// Slow-only injection: every dispatch is delayed deterministically
	// but none fail, so the sweep outcome is untouched while the
	// injection counters are guaranteed to move.
	in := chaos.New(chaos.Config{Seed: 7, Slow: 1, SlowMax: time.Millisecond})
	coordSrv, _ := startRole(t, serverConfig{
		Role: "coordinator", Peers: []string{workerSrv.URL}, FleetSlots: 2, Chaos: in,
	})

	lines, sum := sweepNDJSON(t, coordSrv.URL, sweepRequest)
	if len(lines) == 0 || sum.Holds+sum.Violated+sum.Inconclusive != len(lines) {
		t.Fatalf("chaos-armed sweep incomplete: %d lines, summary %+v", len(lines), sum)
	}

	_, body := getBody(t, coordSrv.URL+"/metrics")
	for _, want := range []string{
		`mcaserved_fleet_worker_breaker{worker="` + workerSrv.URL + `",state="closed"} 1`,
		`mcaserved_fleet_worker_breaker{worker="` + workerSrv.URL + `",state="open"} 0`,
		`mcaserved_fleet_worker_breaker{worker="` + workerSrv.URL + `",state="half_open"} 0`,
		`mcaserved_fleet_dispatch_total{kind="breaker_fast_fail"} 0`,
		`mcaserved_chaos_injections_total{site="fleet.dispatch",kind="slow"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("coordinator /metrics missing %q:\n%s", want, body)
		}
	}
	if in.Counts()["fleet.dispatch/slow"] == 0 {
		t.Fatal("slow injection never fired")
	}

	// The worker's cache tier exposes the quarantine counter even when
	// nothing has been quarantined — dashboards need the zero row.
	_, workerBody := getBody(t, workerSrv.URL+"/metrics")
	if !strings.Contains(workerBody, `mcaserved_cache_operations_total{kind="corrupt_quarantined"} 0`) {
		t.Fatalf("worker /metrics missing quarantine counter:\n%s", workerBody)
	}
}
