// Command mcaserved serves the verification engine over HTTP: scenarios
// and sweep files go in as JSON (the codec format of
// docs/SCENARIO_FORMAT.md), unified results come back out, and a
// content-addressed result cache makes repeated verification of the
// same scenario a lookup instead of a search.
//
// Endpoints:
//
//	POST /verify       one scenario document -> one result document.
//	                   With ?checkpoint=1 (explicit engine, parallel
//	                   frontier) a budget-capped run responds
//	                   {"resume": token, "result": ...}; POSTing
//	                   {"resume": token, "max_states": N} later
//	                   continues that run with a raised budget,
//	                   yielding the same result the uninterrupted
//	                   verification would have produced. Tokens are
//	                   single use and held in a small in-memory table
//	POST /sweep        one sweep document -> NDJSON result stream,
//	                   one result per line, then a summary line
//	POST /generate     one generator profile (or empty body for the
//	                   default profile) -> NDJSON stream of generated
//	                   scenarios with their differential-oracle
//	                   verdicts, then a summary line. With
//	                   ?coverage=1&rounds=R the generator runs the
//	                   coverage-guided loop instead and streams one
//	                   corpus-stats line per round, then any oracle
//	                   disagreements, then a summary line
//	GET  /cache/stats  cache effectiveness counters
//	GET  /cache/entry/{key}  peer cache protocol (GET/PUT by content
//	                   address) — this is what other nodes' -remotecache
//	                   points at. Served only with -peercache: PUT
//	                   stores result documents that cannot be validated
//	                   against their key, so the endpoint is opt-in,
//	                   for trusted peers, ideally behind -cachesecret
//	GET  /metrics      Prometheus text exposition: request counts and
//	                   latencies, cache tiers, fleet dispatch stats,
//	                   store occupancy, admission shedding
//	GET  /healthz      liveness probe
//
// The process serves one of three -role values. "standalone" (the
// default) verifies everything in-process. "worker" additionally
// serves the fleet protocol (POST /fleet/work, GET /fleet/health) so a
// coordinator can dispatch work units to it. "coordinator" requires
// -peers (comma-separated worker base URLs), fans /sweep out across
// the fleet via internal/fleet — byte-identical summaries to
// standalone, see docs/OPERATIONS.md — and serves GET /fleet/status
// with dispatch counters and live worker health. Point -remotecache at
// a peer's /cache/entry to layer that peer behind the local cache
// tiers on any role; the peer must run -peercache (and the same
// -cachesecret, if one is set on either side).
//
// Admission control is opt-in: -quotarate/-quotaburst throttle the
// expensive endpoints (/verify, /sweep, /generate) per tenant — the
// X-Tenant header, with one shared anonymous bucket — and -maxinflight
// caps concurrently executing expensive requests. Both shed excess
// load with 429 + Retry-After rather than queueing. /fleet/work is
// exempt from the tenant quota (coordinator dispatches carry no tenant
// identity and would collapse into the anonymous bucket); the
// in-flight cap and the worker's own slot admission still bound it.
//
// Engine selection is per request via query parameters:
// ?engine=auto|explicit|simulation|sat (default auto), &cube=K (SAT
// cube-and-conquer), &runs=N and &seed=S (simulation), and &timeout=30s
// within the server's -maxtimeout. &workers=N means per-engine
// parallelism on /verify (frontier shards, portfolio members) and the
// scenario pool size on /sweep and /generate (per-scenario engines stay
// serial there, so sweep cache keys are independent of pool size).
// /generate instead takes &seed=S, &n=N (scenarios to generate) and
// &engines=a,b,c (an oracle panel, default explicit,simulation,sat),
// plus &coverage=1 and &rounds=R for the coverage-guided loop (the n
// budget splits evenly across rounds; worker count never changes the
// corpus).
// Shutdown is graceful:
// SIGINT/SIGTERM stops accepting connections and lets in-flight
// verifications finish (their contexts are cancelled after the
// drain period).
//
// Usage:
//
//	mcaserved -addr :8080 -cachesize 4096 -cachedir /var/lib/mcaserved
//	mcaserved -role worker -addr :8081 -fleetslots 8
//	mcaserved -role coordinator -peers http://w1:8081,http://w2:8081
//	curl -d @examples/scenarios/line3.json 'localhost:8080/verify'
//	curl -d @examples/scenarios/policy-faults-sweep.json 'localhost:8080/sweep?workers=8'
//	curl -X POST 'localhost:8080/generate?seed=7&n=100'
//	curl -d @examples/scenarios/fuzz-profile.json 'localhost:8080/generate?n=50&engines=explicit,simulation'
//	curl -X POST 'localhost:8080/generate?coverage=1&seed=1&rounds=5&n=40'
//	curl localhost:8080/cache/stats
//	curl localhost:8080/metrics
//
// See docs/OPERATIONS.md for production guidance (cache sizing, epoch
// bumps, drain behaviour, timeout tuning).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/gen"

	// Register the mca-model codec so SAT scenarios decode.
	_ "repro/internal/mcamodel"
)

func main() {
	fs := flag.NewFlagSet("mcaserved", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "sweep worker pool size (0 = one per CPU)")
	cacheSize := fs.Int("cachesize", 4096, "in-memory result cache capacity (0 = default, negative = unbounded)")
	cacheDir := fs.String("cachedir", "", "directory for persistent result cache (empty = memory only; the directory grows unbounded — prune externally)")
	defTimeout := fs.Duration("timeout", 60*time.Second, "default per-request verification timeout")
	maxTimeout := fs.Duration("maxtimeout", 10*time.Minute, "upper bound on client-requested timeouts")
	maxBody := fs.Int64("maxbody", 32<<20, "maximum request body bytes")
	role := fs.String("role", "standalone", "process role: standalone|coordinator|worker")
	peers := fs.String("peers", "", "comma-separated worker base URLs (coordinator role)")
	remoteCache := fs.String("remotecache", "", "peer cache base URL (a peer's /cache/entry) layered behind the local tiers")
	peerCache := fs.Bool("peercache", false, "serve the peer cache protocol at /cache/entry (opt-in: PUT bodies cannot be validated against their key, expose only to trusted peers)")
	cacheSecret := fs.String("cachesecret", "", "shared secret for the peer cache protocol: required of /cache/entry clients when -peercache is set, and sent to the -remotecache peer")
	fleetSlots := fs.Int("fleetslots", 0, "worker: concurrent work units (0 = one per CPU); coordinator: dispatch slots per worker (0 = default 4)")
	quotaRate := fs.Float64("quotarate", 0, "per-tenant requests/second on expensive endpoints (0 = no quota)")
	quotaBurst := fs.Int("quotaburst", 10, "per-tenant burst size when -quotarate is set")
	maxInFlight := fs.Int("maxinflight", 0, "cap on concurrently executing expensive requests (0 = unlimited)")
	chaosSpec := fs.String("chaos", "", "arm seeded fault injection on fleet dispatch, peer cache, and disk cache writes (internal/chaos spec, e.g. \"seed=1,crash=0.1,corrupt=0.05\"); for failure-semantics testing only")
	fs.Parse(os.Args[1:])

	var injector *chaos.Injector
	if *chaosSpec != "" {
		cfg, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		injector = chaos.New(cfg)
		log.Printf("mcaserved: CHAOS ARMED (%s) — fault injection is live, do not run in production", *chaosSpec)
	}
	c, err := cache.New(cache.Options{Capacity: *cacheSize, Dir: *cacheDir, RemoteURL: *remoteCache, RemoteSecret: *cacheSecret, Chaos: injector})
	if err != nil {
		log.Fatal(err)
	}
	s, err := newServer(serverConfig{
		Workers:        *workers,
		Cache:          c,
		CacheCapacity:  *cacheSize,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		MaxBody:        *maxBody,
		Role:           *role,
		Peers:          splitPeers(*peers),
		FleetSlots:     *fleetSlots,
		PeerCache:      *peerCache,
		CacheSecret:    *cacheSecret,
		QuotaRate:      *quotaRate,
		QuotaBurst:     *quotaBurst,
		MaxInFlight:    *maxInFlight,
		Chaos:          injector,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("mcaserved listening on %s (role %s, cache capacity %d, dir %q)", *addr, *role, *cacheSize, *cacheDir)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Restore the default signal disposition before draining, so a
	// second SIGINT/SIGTERM genuinely kills the process instead of
	// being swallowed by the (still registered) notify channel.
	stop()
	log.Print("mcaserved draining (second signal aborts immediately)")
	// Quiesce the fleet first: in-flight dispatches finish, pending
	// units come back inconclusive, and only then is the HTTP side
	// drained — so a coordinator's open /sweep streams can still emit
	// their final lines during Shutdown.
	s.quiesce()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}

// splitPeers parses the -peers list, tolerating blanks.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// serverConfig parameterizes the handler so tests can drive it through
// httptest without a listener.
type serverConfig struct {
	Workers        int
	Cache          *cache.Cache
	CacheCapacity  int // for the /metrics occupancy gauge
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	MaxBody        int64
	Role           string // standalone (default) | coordinator | worker
	Peers          []string
	FleetSlots     int
	PeerCache      bool   // serve /cache/entry (trusted peers only)
	CacheSecret    string // shared secret required of /cache/entry clients
	QuotaRate      float64
	QuotaBurst     int
	MaxInFlight    int
	// Chaos, when non-nil, injects seeded faults into coordinator
	// dispatch (site "fleet.dispatch") and exposes injection counters on
	// /metrics. Cache-tier injection is wired separately through
	// cache.Options.Chaos.
	Chaos *chaos.Injector
}

func (c serverConfig) withDefaults() serverConfig {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 32 << 20
	}
	if c.Role == "" {
		c.Role = "standalone"
	}
	return c
}

type server struct {
	cfg         serverConfig
	handler     http.Handler
	metrics     *metrics
	quotas      *quotaTable        // nil = no quota
	admit       chan struct{}      // nil = no in-flight cap
	coord       *fleet.Coordinator // coordinator role only
	fleetWorker *fleet.Worker      // worker role only
	resumes     *resumeStore       // checkpoints of capped /verify runs
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// quiesce begins fleet draining; a no-op outside the coordinator role.
func (s *server) quiesce() {
	if s.coord != nil {
		s.coord.Quiesce()
	}
}

// newServer builds the service handler for the configured role.
func newServer(cfg serverConfig) (*server, error) {
	cfg = cfg.withDefaults()
	s := &server{cfg: cfg, metrics: newMetrics(), resumes: newResumeStore(16)}
	if cfg.QuotaRate > 0 {
		s.quotas = newQuotaTable(cfg.QuotaRate, cfg.QuotaBurst)
	}
	if cfg.MaxInFlight > 0 {
		s.admit = make(chan struct{}, cfg.MaxInFlight)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/verify", s.gate(s.handleVerify))
	mux.HandleFunc("/sweep", s.gate(s.handleSweep))
	mux.HandleFunc("/generate", s.gate(s.handleGenerate))
	mux.HandleFunc("/cache/stats", s.handleCacheStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ok":true,"role":%q}`+"\n", cfg.Role)
	})
	if cfg.PeerCache && cfg.Cache != nil {
		// The peer cache protocol: what other nodes' -remotecache dials.
		// It serves local tiers only, so peer rings cannot recurse.
		// Opt-in (-peercache) because a PUT body cannot be validated
		// against its content-address key — any client that reaches the
		// endpoint can inject verdicts — so it is mounted only where the
		// operator has decided the network (plus -cachesecret) bounds
		// who that is.
		mux.Handle("/cache/entry/", http.StripPrefix("/cache/entry", cache.HTTPHandler(cfg.Cache, cfg.CacheSecret)))
	}

	switch cfg.Role {
	case "standalone":
	case "worker":
		s.fleetWorker = fleet.NewWorker(fleet.WorkerOptions{
			Slots:   cfg.FleetSlots,
			Cache:   resultCache(cfg.Cache),
			MaxBody: cfg.MaxBody,
		})
		mux.HandleFunc("/fleet/work", s.fleetGate(s.fleetWorker.HandleWork))
		mux.HandleFunc("/fleet/health", s.fleetWorker.HandleHealth)
	case "coordinator":
		var dispatchClient *http.Client
		if cfg.Chaos != nil {
			dispatchClient = &http.Client{Transport: cfg.Chaos.Transport("fleet.dispatch", nil)}
		}
		coord, err := fleet.NewCoordinator(fleet.CoordinatorOptions{
			Workers:        cfg.Peers,
			Cache:          resultCache(cfg.Cache),
			SlotsPerWorker: cfg.FleetSlots,
			UnitTimeout:    cfg.MaxTimeout,
			Client:         dispatchClient,
		})
		if err != nil {
			return nil, fmt.Errorf("role coordinator: %w (set -peers)", err)
		}
		s.coord = coord
		mux.HandleFunc("/fleet/status", s.handleFleetStatus)
	default:
		return nil, fmt.Errorf("unknown role %q (want standalone|coordinator|worker)", cfg.Role)
	}

	s.handler = s.instrument(mux)
	return s, nil
}

// handleFleetStatus reports the coordinator's dispatch counters plus a
// live health probe of every worker.
func (s *server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET"))
		return
	}
	st := s.coord.Stats()
	st.Workers = s.coord.Health(r.Context())
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// bodyErrorStatus distinguishes an over-limit body (413) from a read
// failure (400), so clients do not misreport size limits as malformed
// documents.
func bodyErrorStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// readBody slurps a size-capped request body.
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return data, nil
}

func intParam(q url.Values, name string) (int, error) {
	v := q.Get(name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

// engineFromQuery builds the engine the request asked for. engineWorkers
// is the per-engine parallelism (frontier shards, portfolio members):
// /verify takes it from ?workers=, while /sweep pins it to 0 because
// there ?workers= sizes the scenario pool instead.
func engineFromQuery(r *http.Request, engineWorkers int) (engine.Engine, error) {
	q := r.URL.Query()
	workers := engineWorkers
	cube, err := intParam(q, "cube")
	if err != nil {
		return nil, err
	}
	runs, err := intParam(q, "runs")
	if err != nil {
		return nil, err
	}
	var seed int64
	if v := q.Get("seed"); v != "" {
		seed, err = strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", v)
		}
	}
	switch kind := q.Get("engine"); kind {
	case "", "auto":
		return engine.Auto{Workers: workers}, nil
	case "explicit":
		return engine.Explicit{Workers: workers}, nil
	case "simulation":
		return engine.Simulation{Runs: runs, Seed: seed}, nil
	case "sat":
		return engine.SAT{Workers: workers, CubeVars: cube}, nil
	default:
		return nil, fmt.Errorf("unknown engine %q (want auto|explicit|simulation|sat)", kind)
	}
}

// requestContext applies the effective verification timeout: the
// ?timeout= parameter clamped to the server maximum, or the default.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		parsed, err := time.ParseDuration(v)
		if err != nil || parsed <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q", v)
		}
		d = parsed
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST a scenario document"))
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		httpError(w, bodyErrorStatus(err), err)
		return
	}
	if isResumeRequest(body) {
		s.handleResume(w, r, body)
		return
	}
	scenario, err := engine.DecodeScenario(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	engineWorkers, err := intParam(r.URL.Query(), "workers")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()

	if r.URL.Query().Get("checkpoint") != "" {
		if kind := r.URL.Query().Get("engine"); kind != "" && kind != "auto" && kind != "explicit" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("?checkpoint=1 requires the explicit engine, not %q", kind))
			return
		}
		if engineWorkers == 0 {
			// Checkpoints need the parallel frontier; default to one
			// shard per CPU rather than rejecting the request.
			engineWorkers = -1
		}
		res, cp := engine.Explicit{Workers: engineWorkers}.VerifyResumable(ctx, scenario, nil)
		s.writeResumable(w, res, cp)
		return
	}

	eng, err := engineFromQuery(r, engineWorkers)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res := engine.VerifyCached(ctx, eng, scenario, resultCache(s.cfg.Cache))
	data, err := engine.EncodeResult(&res)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// isResumeRequest distinguishes a resume body ({"resume": token, ...})
// from a scenario document. Scenario documents never carry a "resume"
// key — the strict scenario codec would reject one — so a non-empty
// resume field is unambiguous.
func isResumeRequest(body []byte) bool {
	var probe struct {
		Resume string `json:"resume"`
	}
	return json.Unmarshal(body, &probe) == nil && probe.Resume != ""
}

// handleResume continues a budget-capped /verify run from a stored
// checkpoint token, optionally raising the max_states budget. Tokens
// are single use; an unknown (spent, evicted, or fabricated) token is
// a 404 and the client re-verifies from scratch.
func (s *server) handleResume(w http.ResponseWriter, r *http.Request, body []byte) {
	var req struct {
		Resume    string `json:"resume"`
		MaxStates int    `json:"max_states"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	cp, ok := s.resumes.take(req.Resume)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown or expired resume token %q (tokens are single use and the table is bounded; re-verify from scratch)", req.Resume))
		return
	}
	scenario := cp.Scenario
	if req.MaxStates > 0 {
		scenario.Explore.MaxStates = req.MaxStates
	}
	workers := cp.Workers
	if r.URL.Query().Get("workers") != "" {
		workers, _ = intParam(r.URL.Query(), "workers")
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	res, next := engine.Explicit{Workers: workers}.VerifyResumable(ctx, scenario, cp)
	s.writeResumable(w, res, next)
}

// writeResumable writes a checkpoint-aware /verify response: the
// result document wrapped in an envelope that carries a resume token
// when the run stopped on its state budget (absent when it concluded).
func (s *server) writeResumable(w http.ResponseWriter, res engine.Result, cp *engine.Checkpoint) {
	data, err := engine.EncodeResult(&res)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	env := struct {
		Resume string          `json:"resume,omitempty"`
		Result json.RawMessage `json:"result"`
	}{Result: data}
	if cp != nil {
		env.Resume = s.resumes.put(cp)
	}
	w.Header().Set("Content-Type", "application/json")
	out, err := json.Marshal(env)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Write(append(out, '\n'))
}

// resultCache adapts the optional *cache.Cache to the engine's cache
// interface without smuggling a typed nil into it.
func resultCache(c *cache.Cache) engine.ResultCache {
	if c == nil {
		return nil
	}
	return c
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST a sweep document"))
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		httpError(w, bodyErrorStatus(err), err)
		return
	}
	scenarios, err := engine.ExpandSweep(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// For sweeps ?workers= sizes the scenario pool (falling back to the
	// -workers server default); per-scenario engines stay serial, which
	// also keeps sweep cache keys independent of the chosen pool size.
	poolWorkers, err := intParam(r.URL.Query(), "workers")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if poolWorkers == 0 {
		poolWorkers = s.cfg.Workers
	}
	eng, err := engineFromQuery(r, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()

	// In the coordinator role the sweep fans out across the worker
	// fleet; otherwise a local Runner pool verifies it. Both paths
	// produce identical result and summary bytes (wall-clock aside),
	// so clients need not know which topology served them.
	var resultStream <-chan engine.Result
	if s.coord != nil {
		resultStream = s.coord.Stream(ctx, eng, scenarios)
	} else {
		runner := engine.NewRunner(engine.RunnerOptions{
			Workers: poolWorkers,
			Engine:  eng,
			Cache:   resultCache(s.cfg.Cache),
		})
		resultStream = runner.Stream(ctx, scenarios)
	}

	// NDJSON: one result per line as soon as it completes, then one
	// summary line.
	stream := startNDJSON(w, cancel, "sweep")
	results := make([]engine.Result, len(scenarios))
	start := time.Now()
	for res := range resultStream {
		results[res.Index] = res
		data, err := engine.EncodeResult(&res)
		stream.line(res.Scenario, data, err)
	}
	sum := engine.Summarize(results)
	sum.Wall = time.Since(start)
	stream.summary(engine.EncodeSummary(&sum))
}

// ndjsonStream is the shared scaffolding of the streaming endpoints:
// set the content type, write one line per completed unit of work with
// a flush after each, and finish with one {"summary": ...} line.
// Failures after the first byte can only be reported by truncating the
// stream, so on a write or encode error the stream aborts the batch
// (cancelling its context) but keeps consuming lines silently — the
// producer's worker pool must be drained to exit — and the missing
// summary line tells the client the request did not complete.
type ndjsonStream struct {
	w       http.ResponseWriter
	flusher http.Flusher
	cancel  context.CancelFunc
	name    string // endpoint name for log lines
	aborted bool
}

func startNDJSON(w http.ResponseWriter, cancel context.CancelFunc, name string) *ndjsonStream {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	return &ndjsonStream{w: w, flusher: flusher, cancel: cancel, name: name}
}

// line writes one NDJSON line; label identifies the unit of work in
// the abort log. A nil data with non-nil err aborts the stream.
func (s *ndjsonStream) line(label string, data []byte, err error) {
	if s.aborted {
		return // draining
	}
	if err == nil {
		_, err = s.w.Write(append(data, '\n'))
	}
	if err != nil {
		log.Printf("%s: aborting stream at %q: %v", s.name, label, err)
		s.aborted = true
		s.cancel()
		return
	}
	if s.flusher != nil {
		s.flusher.Flush()
	}
}

// summary finishes an unaborted stream with the {"summary": ...} line.
func (s *ndjsonStream) summary(data []byte, err error) {
	if s.aborted {
		return
	}
	if err != nil {
		log.Printf("%s: encoding summary: %v", s.name, err)
		return
	}
	s.w.Write([]byte(`{"summary":`))
	s.w.Write(data)
	s.w.Write([]byte("}\n"))
}

// maxGenerate caps the per-request corpus size: generation is cheap but
// every scenario is then verified on the whole engine panel, and one
// request must not be able to queue unbounded work behind one timeout.
const maxGenerate = 10000

// handleGenerate manufactures a scenario corpus from a generator
// profile and streams each scenario with its differential-oracle
// verdicts as NDJSON, then a summary line:
//
//	{"index":0,"scenario":{...},"agree":true,"legs":[{"engine":"explicit","class":"dynamic-exact","result":{...}}]}
//	...
//	{"summary":{"scenarios":50,"disagreements":0,"legs":120,...}}
//
// The body is a profile document (docs/FUZZING.md) or empty for the
// built-in default profile. As with /sweep, a truncated stream (no
// summary line) means the request did not complete.
func (s *server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST a generator profile (or an empty body for the default profile)"))
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		httpError(w, bodyErrorStatus(err), err)
		return
	}
	profile := gen.DefaultProfile()
	if len(body) > 0 {
		profile, err = gen.DecodeProfile(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	q := r.URL.Query()
	var seed int64 = 1
	if v := q.Get("seed"); v != "" {
		seed, err = strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad seed %q", v))
			return
		}
	}
	n := 50
	if v := q.Get("n"); v != "" {
		n, err = strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", v))
			return
		}
		// An explicit n=0 is rejected, not silently defaulted: only an
		// absent parameter means "the default 50".
		if n < 1 || n > maxGenerate {
			httpError(w, http.StatusBadRequest, fmt.Errorf("n %d outside 1..%d", n, maxGenerate))
			return
		}
	}
	enginesSpec := q.Get("engines")
	if enginesSpec == "" {
		enginesSpec = "explicit,simulation,sat"
	}
	engines, err := gen.ParseEngines(enginesSpec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	poolWorkers, err := intParam(q, "workers")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if poolWorkers == 0 {
		poolWorkers = s.cfg.Workers
	}
	coverageMode := false
	switch q.Get("coverage") {
	case "", "0":
	case "1", "true":
		coverageMode = true
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad coverage %q (want 1)", q.Get("coverage")))
		return
	}
	rounds := 4
	if v := q.Get("rounds"); v != "" {
		if !coverageMode {
			httpError(w, http.StatusBadRequest, errors.New("rounds requires coverage=1"))
			return
		}
		rounds, err = strconv.Atoi(v)
		if err != nil || rounds < 1 || rounds > 100 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("rounds %q outside 1..100", v))
			return
		}
	}
	// Validate every parameter — the timeout included — before paying
	// for corpus generation, so a malformed request is a cheap 400.
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	if coverageMode {
		if err := profile.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		s.generateCoverage(w, cancel, ctx, profile, seed, n, rounds, gen.DiffOptions{
			Engines: engines,
			Cache:   resultCache(s.cfg.Cache),
			Workers: poolWorkers,
		})
		return
	}
	scenarios, err := gen.Generate(profile, seed, n)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	stream := startNDJSON(w, cancel, "generate")
	results := make([]gen.DiffResult, len(scenarios))
	for res := range gen.DiffStream(ctx, scenarios, gen.DiffOptions{
		Engines: engines,
		Cache:   resultCache(s.cfg.Cache),
		Workers: poolWorkers,
	}) {
		results[res.Index] = res
		data, err := encodeDiffLine(&res)
		stream.line(res.Scenario.Name, data, err)
	}
	sum := gen.SummarizeDiff(results)
	stream.summary(json.Marshal(sum2wire(sum)))
}

// coverageRoundJSON is the wire form of one coverage-round stats line.
type coverageRoundJSON struct {
	Round         int `json:"round"`
	Scenarios     int `json:"scenarios"`
	NewBuckets    int `json:"new_buckets"`
	Buckets       int `json:"buckets"`
	Corpus        int `json:"corpus"`
	Disagreements int `json:"disagreements"`
}

// generateCoverage streams the coverage-guided loop: one stats line per
// round as it completes, then every oracle disagreement as a diff line,
// then the run summary. A truncated stream (no summary line) means the
// loop did not finish inside the request budget.
func (s *server) generateCoverage(w http.ResponseWriter, cancel context.CancelFunc, ctx context.Context, profile gen.Profile, seed int64, n, rounds int, diff gen.DiffOptions) {
	perRound := n / rounds
	if perRound < 1 {
		perRound = 1
	}
	stream := startNDJSON(w, cancel, "generate-coverage")
	res, err := gen.FuzzCoverage(ctx, gen.CoverageOptions{
		Profile:  profile,
		Seed:     seed,
		Rounds:   rounds,
		PerRound: perRound,
		Diff:     diff,
	}, func(rs gen.RoundStats) {
		data, err := json.Marshal(coverageRoundJSON{
			Round: rs.Round, Scenarios: rs.Scenarios, NewBuckets: rs.NewBuckets,
			Buckets: rs.Buckets, Corpus: rs.Corpus, Disagreements: rs.Disagreements,
		})
		stream.line(fmt.Sprintf("round %d", rs.Round), data, err)
	})
	if err != nil {
		// Cancellation mid-loop: truncate without a summary, the
		// streaming contract for an incomplete request.
		stream.line("coverage loop", nil, err)
		return
	}
	for i := range res.Disagreements {
		r := &res.Disagreements[i]
		data, err := encodeDiffLine(r)
		stream.line(r.Scenario.Name, data, err)
	}
	total := 0
	for _, rs := range res.Rounds {
		total += rs.Scenarios
	}
	stream.summary(json.Marshal(map[string]int{
		"rounds":        len(res.Rounds),
		"scenarios":     total,
		"buckets":       len(res.Buckets),
		"corpus":        len(res.Corpus),
		"disagreements": len(res.Disagreements),
	}))
}

// diffLineJSON is the wire form of one /generate stream line.
type diffLineJSON struct {
	Index    int             `json:"index"`
	Scenario json.RawMessage `json:"scenario"`
	Agree    bool            `json:"agree"`
	Reasons  []string        `json:"reasons,omitempty"`
	Legs     []diffLegJSON   `json:"legs"`
}

type diffLegJSON struct {
	Engine string          `json:"engine"`
	Class  string          `json:"class"`
	Result json.RawMessage `json:"result"`
}

func encodeDiffLine(r *gen.DiffResult) ([]byte, error) {
	scenario, err := engine.EncodeScenario(&r.Scenario)
	if err != nil {
		return nil, err
	}
	line := diffLineJSON{Index: r.Index, Scenario: scenario, Agree: r.Agree, Reasons: r.Reasons}
	for _, l := range r.Legs {
		res, err := engine.EncodeResult(&l.Result)
		if err != nil {
			return nil, err
		}
		line.Legs = append(line.Legs, diffLegJSON{Engine: l.Engine, Class: l.Class.String(), Result: res})
	}
	return json.Marshal(line)
}

// sum2wire renders the oracle summary with stable snake_case keys.
func sum2wire(s gen.DiffSummary) map[string]int {
	return map[string]int{
		"scenarios":     s.Scenarios,
		"disagreements": s.Disagreements,
		"legs":          s.Legs,
		"holds":         s.Holds,
		"violated":      s.Violated,
		"inconclusive":  s.Inconclusive,
		"errors":        s.Errors,
		"cache_hits":    s.CacheHits,
	}
}

func (s *server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if s.cfg.Cache == nil {
		io.WriteString(w, `{"enabled":false}`+"\n")
		return
	}
	json.NewEncoder(w).Encode(s.cfg.Cache.Stats())
}
