package main

import (
	"crypto/rand"
	"encoding/hex"
	"sync"

	"repro/internal/engine"
)

// resumeStore holds the checkpoints of budget-capped /verify runs,
// keyed by single-use opaque tokens. It is a small bounded in-memory
// table, not durable storage: tokens die with the process, and when
// the table is full the oldest checkpoint is evicted (the client can
// always fall back to re-verifying from scratch, so eviction costs
// work, never correctness). Clients that need durable checkpoints use
// mcacheck -checkpoint, which writes the document to a file.
type resumeStore struct {
	mu    sync.Mutex
	cap   int
	order []string // insertion order, oldest first
	byTok map[string]*engine.Checkpoint
}

func newResumeStore(capacity int) *resumeStore {
	if capacity <= 0 {
		capacity = 16
	}
	return &resumeStore{cap: capacity, byTok: make(map[string]*engine.Checkpoint)}
}

// put stores a checkpoint and returns its fresh token, evicting the
// oldest entry when the table is over capacity.
func (s *resumeStore) put(cp *engine.Checkpoint) string {
	buf := make([]byte, 16)
	rand.Read(buf) // never fails per crypto/rand contract
	tok := hex.EncodeToString(buf)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byTok[tok] = cp
	s.order = append(s.order, tok)
	for len(s.order) > s.cap {
		delete(s.byTok, s.order[0])
		s.order = s.order[1:]
	}
	return tok
}

// take consumes a token: the checkpoint is returned at most once.
// Single use keeps the table from accumulating spent prefixes and
// makes "resumed twice" a visible client error instead of two racing
// continuations of one run state.
func (s *resumeStore) take(tok string) (*engine.Checkpoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp, ok := s.byTok[tok]
	if !ok {
		return nil, false
	}
	delete(s.byTok, tok)
	for i, t := range s.order {
		if t == tok {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return cp, true
}

// len reports the number of live tokens (for tests).
func (s *resumeStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byTok)
}
