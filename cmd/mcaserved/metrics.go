package main

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/fleet"
)

// metrics is a hand-rolled Prometheus-text registry: request counters
// and latency accumulators keyed by a bounded path set, plus shed
// counters for the admission layer. Everything else on /metrics (cache
// tiers, fleet dispatch stats, store occupancy) is collected live from
// the owning component at scrape time, so the registry itself stays
// tiny and lock-cheap.
type metrics struct {
	mu       sync.Mutex
	requests map[[2]string]uint64 // {path, code} -> count
	latNS    map[string]int64     // path -> total latency
	latN     map[string]uint64    // path -> request count
	shed     map[string]uint64    // reason -> count
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[[2]string]uint64{},
		latNS:    map[string]int64{},
		latN:     map[string]uint64{},
		shed:     map[string]uint64{},
	}
}

func (m *metrics) observe(path string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[[2]string{path, strconv.Itoa(code)}]++
	m.latNS[path] += int64(d)
	m.latN[path]++
}

func (m *metrics) shedInc(reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shed[reason]++
}

// knownPaths bounds label cardinality: anything outside the served
// endpoint set is folded into "other" so a URL scanner cannot grow the
// registry without limit.
var knownPaths = map[string]bool{
	"/verify": true, "/sweep": true, "/generate": true,
	"/cache/stats": true, "/cache/entry/": true,
	"/metrics": true, "/healthz": true,
	"/fleet/work": true, "/fleet/health": true, "/fleet/status": true,
}

func normalizePath(p string) string {
	if strings.HasPrefix(p, "/cache/entry/") {
		return "/cache/entry/"
	}
	if knownPaths[p] {
		return p
	}
	return "other"
}

// statusRecorder captures the response code while preserving the
// Flusher the NDJSON endpoints depend on.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the whole mux with request accounting.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.metrics.observe(normalizePath(r.URL.Path), rec.code, time.Since(start))
	})
}

// promWriter accumulates one metric family at a time and emits samples
// in sorted label order, so the exposition is deterministic.
type promWriter struct {
	b strings.Builder
}

func (p *promWriter) family(name, kind, help string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

func (p *promWriter) sample(name, labels string, value interface{}) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	switch v := value.(type) {
	case float64:
		fmt.Fprintf(&p.b, "%s%s %g\n", name, labels, v)
	default:
		fmt.Fprintf(&p.b, "%s%s %d\n", name, labels, v)
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET"))
		return
	}
	var p promWriter

	s.metrics.mu.Lock()
	p.family("mcaserved_requests_total", "counter", "HTTP requests by path and status code.")
	keys := make([][2]string, 0, len(s.metrics.requests))
	for k := range s.metrics.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		p.sample("mcaserved_requests_total", fmt.Sprintf("path=%q,code=%q", k[0], k[1]), s.metrics.requests[k])
	}
	p.family("mcaserved_request_seconds", "summary", "Request wall time by path.")
	paths := make([]string, 0, len(s.metrics.latN))
	for k := range s.metrics.latN {
		paths = append(paths, k)
	}
	sort.Strings(paths)
	for _, k := range paths {
		p.sample("mcaserved_request_seconds_sum", fmt.Sprintf("path=%q", k), time.Duration(s.metrics.latNS[k]).Seconds())
		p.sample("mcaserved_request_seconds_count", fmt.Sprintf("path=%q", k), s.metrics.latN[k])
	}
	p.family("mcaserved_shed_total", "counter", "Requests rejected by the admission layer, by reason.")
	reasons := make([]string, 0, len(s.metrics.shed))
	for k := range s.metrics.shed {
		reasons = append(reasons, k)
	}
	sort.Strings(reasons)
	for _, k := range reasons {
		p.sample("mcaserved_shed_total", fmt.Sprintf("reason=%q", k), s.metrics.shed[k])
	}
	s.metrics.mu.Unlock()

	if s.cfg.Cache != nil {
		writeCacheMetrics(&p, s.cfg.Cache, s.cfg.CacheCapacity)
	}
	if s.coord != nil {
		writeCoordinatorMetrics(&p, s.coord.Stats())
	}
	if s.fleetWorker != nil {
		writeWorkerMetrics(&p, s.fleetWorker.Stats())
	}
	if s.cfg.Chaos != nil {
		writeChaosMetrics(&p, s.cfg.Chaos)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, p.b.String())
}

func writeCacheMetrics(p *promWriter, c *cache.Cache, capacity int) {
	st := c.Stats()
	p.family("mcaserved_cache_operations_total", "counter", "Result cache operations by tier and kind.")
	for _, row := range []struct {
		kind string
		v    uint64
	}{
		{"hit_memory", st.Hits}, {"hit_disk", st.DiskHits}, {"hit_remote", st.RemoteHits},
		{"miss", st.Misses}, {"put", st.Puts}, {"put_remote", st.RemotePuts},
		{"eviction", st.Evictions}, {"error_disk", st.DiskErrors}, {"error_remote", st.RemoteErrors},
		{"corrupt_quarantined", st.CorruptEntries},
	} {
		p.sample("mcaserved_cache_operations_total", fmt.Sprintf("kind=%q", row.kind), row.v)
	}
	p.family("mcaserved_cache_entries", "gauge", "Resident in-memory cache entries.")
	p.sample("mcaserved_cache_entries", "", st.Entries)
	p.family("mcaserved_cache_capacity", "gauge", "Configured in-memory capacity (0 = unbounded).")
	if capacity < 0 {
		capacity = 0
	}
	p.sample("mcaserved_cache_capacity", "", capacity)
}

func writeCoordinatorMetrics(p *promWriter, st fleet.Stats) {
	p.family("mcaserved_fleet_dispatch_total", "counter", "Coordinator dispatch outcomes by kind.")
	for _, row := range []struct {
		kind string
		v    uint64
	}{
		{"dispatch", st.Dispatches}, {"completed", st.Completed}, {"retry", st.Retries},
		{"rejection", st.Rejections}, {"local_fallback", st.LocalFallbacks},
		{"cache_hit", st.CacheHits}, {"drained", st.Drained},
		{"breaker_fast_fail", st.BreakerFastFails},
	} {
		p.sample("mcaserved_fleet_dispatch_total", fmt.Sprintf("kind=%q", row.kind), row.v)
	}
	p.family("mcaserved_fleet_worker_healthy", "gauge", "Per-worker health as seen by the dispatch loop.")
	p.family("mcaserved_fleet_worker_completed_total", "counter", "Units completed per worker.")
	p.family("mcaserved_fleet_worker_breaker", "gauge", "Per-worker circuit breaker state (1 on the current state's row).")
	for _, ws := range st.Workers {
		healthy := 0
		if ws.Healthy {
			healthy = 1
		}
		p.sample("mcaserved_fleet_worker_healthy", fmt.Sprintf("worker=%q", ws.URL), healthy)
		p.sample("mcaserved_fleet_worker_completed_total", fmt.Sprintf("worker=%q", ws.URL), ws.Completed)
		for _, state := range []string{"closed", "half_open", "open"} {
			v := 0
			if ws.Breaker == state {
				v = 1
			}
			p.sample("mcaserved_fleet_worker_breaker", fmt.Sprintf("worker=%q,state=%q", ws.URL, state), v)
		}
	}
}

// writeChaosMetrics exposes the injection counters of an armed chaos
// injector, so a chaos run's fault mix is observable at the same place
// its effects (retries, quarantines, breaker trips) land.
func writeChaosMetrics(p *promWriter, in *chaos.Injector) {
	counts := in.Counts()
	p.family("mcaserved_chaos_injections_total", "counter", "Injected faults by site and kind (chaos armed).")
	for _, k := range chaos.CountKeys(counts) {
		site, kind, _ := strings.Cut(k, "/")
		p.sample("mcaserved_chaos_injections_total", fmt.Sprintf("site=%q,kind=%q", site, kind), counts[k])
	}
}

func writeWorkerMetrics(p *promWriter, st fleet.WorkerStats) {
	p.family("mcaserved_worker_units_total", "counter", "Work units completed by this worker.")
	p.sample("mcaserved_worker_units_total", "", st.Units)
	p.family("mcaserved_worker_rejected_total", "counter", "Work units rejected over capacity.")
	p.sample("mcaserved_worker_rejected_total", "", st.Rejected)
	p.family("mcaserved_worker_busy", "gauge", "Work-unit slots currently executing.")
	p.sample("mcaserved_worker_busy", "", st.Busy)
	p.family("mcaserved_worker_slots", "gauge", "Configured work-unit slots.")
	p.sample("mcaserved_worker_slots", "", st.Slots)
}
