package main

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// quotaTable rate-limits the expensive endpoints per tenant with
// classic token buckets: each tenant accrues rate tokens per second up
// to burst, one request costs one token, and an empty bucket yields a
// 429 whose Retry-After says when the next token lands. Tenancy is the
// X-Tenant header; absent means the anonymous tenant, which shares one
// bucket — so an unlabelled client population is throttled as a whole
// rather than bypassing the quota.
type quotaTable struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*tokenBucket
	now     func() time.Time // test hook
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newQuotaTable(rate float64, burst int) *quotaTable {
	if burst < 1 {
		burst = 1
	}
	return &quotaTable{
		rate:    rate,
		burst:   float64(burst),
		buckets: map[string]*tokenBucket{},
		now:     time.Now,
	}
}

// allow spends one token from the tenant's bucket. When the bucket is
// empty it reports the wait until a full token accrues.
func (q *quotaTable) allow(tenant string) (ok bool, retryAfter time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b := q.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	b.tokens = math.Min(q.burst, b.tokens+now.Sub(b.last).Seconds()*q.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	return false, wait
}

// retryAfterHeader rounds a wait up to whole seconds, minimum 1 — the
// header's unit.
func retryAfterHeader(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// gate wraps an expensive handler with the admission layer: per-tenant
// quota first (cheap, rejects abusive tenants before they consume an
// in-flight slot), then the global in-flight cap. Both shed load with
// 429 + Retry-After instead of queueing, so under overload the server
// stays responsive and clients hold the backoff state.
func (s *server) gate(h http.HandlerFunc) http.HandlerFunc {
	return s.admission(true, h)
}

// fleetGate admits intra-fleet traffic (/fleet/work) with the in-flight
// cap only. Coordinator dispatches carry no X-Tenant, so the per-tenant
// quota would fold the whole fleet into the single anonymous bucket and
// mass-429 it — per-tenant policy is for clients, not for the
// coordinator; worker capacity is bounded by -maxinflight here plus the
// worker's own slot admission.
func (s *server) fleetGate(h http.HandlerFunc) http.HandlerFunc {
	return s.admission(false, h)
}

func (s *server) admission(tenantQuota bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if tenantQuota && s.quotas != nil {
			if ok, retry := s.quotas.allow(r.Header.Get("X-Tenant")); !ok {
				s.metrics.shedInc("quota")
				w.Header().Set("Retry-After", retryAfterHeader(retry))
				httpError(w, http.StatusTooManyRequests, fmt.Errorf("tenant quota exhausted, retry in %s", retry.Round(time.Millisecond)))
				return
			}
		}
		if s.admit != nil {
			select {
			case s.admit <- struct{}{}:
				defer func() { <-s.admit }()
			default:
				s.metrics.shedInc("inflight")
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests, fmt.Errorf("server at capacity (%d requests in flight)", cap(s.admit)))
				return
			}
		}
		h(w, r)
	}
}
