// Command satsolve is a DIMACS CNF solver built on the library's CDCL
// engine — the bottom of the verification stack, usable standalone.
//
// Usage:
//
//	satsolve [-stats] [-maxconflicts N] [-workers N] [-cube K] [-timeout D] file.cnf
//	cat file.cnf | satsolve
//
// -workers races a portfolio of N diversified solvers; -cube splits the
// formula into 2^K cubes solved concurrently (cube-and-conquer);
// -timeout aborts the search after a wall-clock deadline through the
// engine layer's cooperative cancellation (exit "s UNKNOWN"). Output
// follows the SAT-competition convention: an "s" status line and, for
// satisfiable instances, a "v" model line.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/portfolio"
	"repro/internal/sat"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout))
}

func run(args []string, stdin io.Reader, stdout io.Writer) int {
	fs := flag.NewFlagSet("satsolve", flag.ContinueOnError)
	stats := fs.Bool("stats", false, "print solver statistics")
	maxConflicts := fs.Int64("maxconflicts", 0, "conflict budget (0 = unlimited)")
	workers := fs.Int("workers", 1, "parallel solvers: >1 races a portfolio, 0 means one per core; with -cube, sizes the cube worker pool")
	cube := fs.Int("cube", 0, "cube-and-conquer on 2^K cubes (0 = off); workers default to one per core")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline for the search (0 = none)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctx := context.Background()
	var cancelled func() bool
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
		cancelled = func() bool { return ctx.Err() != nil }
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		in = f
	}

	cnf, err := sat.ParseDIMACS(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	opts := sat.Options{MaxConflicts: *maxConflicts}
	var status sat.Status
	var model []bool
	var st sat.Stats
	if *workers != 1 || *cube > 0 {
		pw := *workers
		if pw == 0 || (*cube > 0 && pw == 1) {
			pw = runtime.GOMAXPROCS(0) // default: one worker per core
		}
		res := portfolio.Solve(cnf, portfolio.Options{Workers: pw, CubeVars: *cube, Base: opts, Cancel: cancelled})
		status, model, st = res.Status, res.Model, res.Stats
		if *stats {
			if *cube > 0 {
				fmt.Fprintf(stdout, "c cube-and-conquer cubes=%d unsat-cubes=%d workers=%d\n",
					res.Cubes, res.UnsatCubes, pw)
			} else {
				fmt.Fprintf(stdout, "c portfolio workers=%d winner=%d\n", pw, res.Winner)
			}
		}
	} else {
		solver := sat.NewSolverWithOptions(opts)
		if err := cnf.LoadInto(solver); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if cancelled != nil {
			solver.SetCancel(cancelled)
		}
		status = solver.Solve()
		st = solver.Stats()
		if status == sat.StatusSat {
			model = solver.Model()
		}
	}
	if *stats {
		fmt.Fprintf(stdout, "c conflicts=%d decisions=%d propagations=%d restarts=%d learnt=%d deleted=%d\n",
			st.Conflicts, st.Decisions, st.Propagations, st.Restarts, st.Learnt, st.Deleted)
		fmt.Fprintf(stdout, "c vars=%d clauses=%d\n", cnf.NumVars, cnf.NumClauses())
	}
	switch status {
	case sat.StatusSat:
		fmt.Fprintln(stdout, "s SATISFIABLE")
		fmt.Fprint(stdout, "v")
		for v := 0; v < cnf.NumVars; v++ {
			lit := v + 1
			if !model[v] {
				lit = -lit
			}
			fmt.Fprintf(stdout, " %d", lit)
		}
		fmt.Fprintln(stdout, " 0")
		return 10
	case sat.StatusUnsat:
		fmt.Fprintln(stdout, "s UNSATISFIABLE")
		return 20
	default:
		fmt.Fprintln(stdout, "s UNKNOWN")
		return 0
	}
}
