// Command satsolve is a DIMACS CNF solver built on the library's CDCL
// engine — the bottom of the verification stack, usable standalone.
//
// Usage:
//
//	satsolve [-stats] [-maxconflicts N] file.cnf
//	cat file.cnf | satsolve
//
// Output follows the SAT-competition convention: an "s" status line and,
// for satisfiable instances, a "v" model line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/sat"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout))
}

func run(args []string, stdin io.Reader, stdout io.Writer) int {
	fs := flag.NewFlagSet("satsolve", flag.ContinueOnError)
	stats := fs.Bool("stats", false, "print solver statistics")
	maxConflicts := fs.Int64("maxconflicts", 0, "conflict budget (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		in = f
	}

	cnf, err := sat.ParseDIMACS(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	solver := sat.NewSolverWithOptions(sat.Options{MaxConflicts: *maxConflicts})
	if err := cnf.LoadInto(solver); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	status := solver.Solve()
	if *stats {
		st := solver.Stats()
		fmt.Fprintf(stdout, "c conflicts=%d decisions=%d propagations=%d restarts=%d learnt=%d deleted=%d\n",
			st.Conflicts, st.Decisions, st.Propagations, st.Restarts, st.Learnt, st.Deleted)
		fmt.Fprintf(stdout, "c vars=%d clauses=%d\n", cnf.NumVars, cnf.NumClauses())
	}
	switch status {
	case sat.StatusSat:
		fmt.Fprintln(stdout, "s SATISFIABLE")
		model := solver.Model()
		fmt.Fprint(stdout, "v")
		for v := 0; v < cnf.NumVars; v++ {
			lit := v + 1
			if !model[v] {
				lit = -lit
			}
			fmt.Fprintf(stdout, " %d", lit)
		}
		fmt.Fprintln(stdout, " 0")
		return 10
	case sat.StatusUnsat:
		fmt.Fprintln(stdout, "s UNSATISFIABLE")
		return 20
	default:
		fmt.Fprintln(stdout, "s UNKNOWN")
		return 0
	}
}
