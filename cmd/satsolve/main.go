// Command satsolve is a DIMACS CNF solver built on the library's CDCL
// engine — the bottom of the verification stack, usable standalone.
//
// Usage:
//
//	satsolve [-stats] [-maxconflicts N] [-workers N] [-cube K] [-timeout D] file.cnf
//	cat file.cnf | satsolve
//
// -workers races a portfolio of N diversified solvers; -cube splits the
// formula into 2^K cubes solved concurrently (cube-and-conquer);
// -timeout aborts the search after a wall-clock deadline through the
// engine layer's cooperative cancellation (exit "s UNKNOWN"). Output
// follows the SAT-competition convention: an "s" status line and, for
// satisfiable instances, a "v" model line.
//
// -incremental switches to iCNF-style incremental solving: besides the
// DIMACS clauses, the input may carry assumption lines of the form
// "a <lit> ... 0"; each is decided in order by SolveAssuming on one
// persistent solver, so learnt clauses accumulate across the queries,
// and each query prints its own status (and model) line. An input
// without assumption lines gets a single unassumed solve.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/portfolio"
	"repro/internal/sat"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout))
}

func run(args []string, stdin io.Reader, stdout io.Writer) int {
	fs := flag.NewFlagSet("satsolve", flag.ContinueOnError)
	stats := fs.Bool("stats", false, "print solver statistics")
	maxConflicts := fs.Int64("maxconflicts", 0, "conflict budget (0 = unlimited)")
	workers := fs.Int("workers", 1, "parallel solvers: >1 races a portfolio, 0 means one per core; with -cube, sizes the cube worker pool")
	cube := fs.Int("cube", 0, "cube-and-conquer on 2^K cubes (0 = off); workers default to one per core")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline for the search (0 = none)")
	incremental := fs.Bool("incremental", false, "solve each 'a <lits> 0' assumption line in turn on one persistent solver")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *incremental && (*workers != 1 || *cube > 0) {
		fmt.Fprintln(os.Stderr, "satsolve: -incremental is serial; drop -workers/-cube")
		return 2
	}

	ctx := context.Background()
	var cancelled func() bool
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
		cancelled = func() bool { return ctx.Err() != nil }
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		in = f
	}

	opts := sat.Options{MaxConflicts: *maxConflicts}
	if *incremental {
		return runIncremental(in, stdout, opts, cancelled, *stats)
	}

	cnf, err := sat.ParseDIMACS(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var status sat.Status
	var model []bool
	var st sat.Stats
	if *workers != 1 || *cube > 0 {
		pw := *workers
		if pw == 0 || (*cube > 0 && pw == 1) {
			pw = runtime.GOMAXPROCS(0) // default: one worker per core
		}
		res := portfolio.Solve(cnf, portfolio.Options{Workers: pw, CubeVars: *cube, Base: opts, Cancel: cancelled})
		status, model, st = res.Status, res.Model, res.Stats
		if *stats {
			if *cube > 0 {
				fmt.Fprintf(stdout, "c cube-and-conquer cubes=%d unsat-cubes=%d workers=%d\n",
					res.Cubes, res.UnsatCubes, pw)
			} else {
				fmt.Fprintf(stdout, "c portfolio workers=%d winner=%d\n", pw, res.Winner)
			}
		}
	} else {
		solver := sat.NewSolverWithOptions(opts)
		if err := cnf.LoadInto(solver); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if cancelled != nil {
			solver.SetCancel(cancelled)
		}
		status = solver.Solve()
		st = solver.Stats()
		if status == sat.StatusSat {
			model = solver.Model()
		}
	}
	if *stats {
		printStats(stdout, st)
		fmt.Fprintf(stdout, "c vars=%d clauses=%d\n", cnf.NumVars, cnf.NumClauses())
	}
	return printVerdict(stdout, status, model, cnf.NumVars)
}

// printStats renders the solver counters, including the LBD profile of
// the learnt-clause database and the arena compaction count.
func printStats(w io.Writer, st sat.Stats) {
	fmt.Fprintf(w, "c conflicts=%d decisions=%d propagations=%d restarts=%d learnt=%d deleted=%d\n",
		st.Conflicts, st.Decisions, st.Propagations, st.Restarts, st.Learnt, st.Deleted)
	if st.Learnt > 0 {
		fmt.Fprintf(w, "c lbd mean=%.2f glue=%d hist=", st.MeanLBD(), st.GlueLearnt)
		for i, n := range st.LBDHist {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if i == len(st.LBDHist)-1 {
				fmt.Fprintf(w, "%d+:%d", i+1, n)
			} else {
				fmt.Fprintf(w, "%d:%d", i+1, n)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "c arena gcs=%d\n", st.ArenaGCs)
}

// printVerdict writes the competition-style status (and model) lines
// and returns the matching exit code.
func printVerdict(w io.Writer, status sat.Status, model []bool, numVars int) int {
	switch status {
	case sat.StatusSat:
		fmt.Fprintln(w, "s SATISFIABLE")
		fmt.Fprint(w, "v")
		for v := 0; v < numVars; v++ {
			lit := v + 1
			if !model[v] {
				lit = -lit
			}
			fmt.Fprintf(w, " %d", lit)
		}
		fmt.Fprintln(w, " 0")
		return 10
	case sat.StatusUnsat:
		fmt.Fprintln(w, "s UNSATISFIABLE")
		return 20
	default:
		fmt.Fprintln(w, "s UNKNOWN")
		return 0
	}
}

// runIncremental implements -incremental: split the input into DIMACS
// clauses and iCNF assumption lines ("a <lits> 0"), load the clauses
// into one persistent solver, and decide each assumption set in order.
// Learnt clauses, activities, and phases carry over between queries.
// Stats printed per query are that query's deltas, not running totals.
func runIncremental(in io.Reader, stdout io.Writer, opts sat.Options, cancelled func() bool, stats bool) int {
	var dimacs strings.Builder
	var queries [][]sat.Lit
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "a ") && line != "a" {
			// "p inccnf" is the iCNF header; the DIMACS parser wants "p cnf".
			if strings.HasPrefix(line, "p inccnf") {
				continue
			}
			dimacs.WriteString(line)
			dimacs.WriteByte('\n')
			continue
		}
		var asms []sat.Lit
		for _, tok := range strings.Fields(line)[1:] {
			n, err := strconv.Atoi(tok)
			if err != nil {
				fmt.Fprintf(os.Stderr, "satsolve: bad assumption literal %q\n", tok)
				return 2
			}
			if n == 0 {
				break
			}
			v := sat.Var(abs(n) - 1)
			asms = append(asms, sat.MkLit(v, n < 0))
		}
		queries = append(queries, asms)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cnf, err := sat.ParseDIMACS(strings.NewReader(dimacs.String()))
	if err != nil {
		// The iCNF body may omit the "p cnf" header entirely when only
		// assumption lines follow; report the parse error as-is.
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(queries) == 0 {
		queries = append(queries, nil) // plain solve
	}
	solver := sat.NewSolverWithOptions(opts)
	if err := cnf.LoadInto(solver); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if cancelled != nil {
		solver.SetCancel(cancelled)
	}
	// Assumption literals may name variables past the clause section.
	for _, q := range queries {
		for _, l := range q {
			for solver.NumVars() <= int(l.Var()) {
				solver.NewVar()
			}
		}
	}
	code := 0
	var prev sat.Stats
	for i, q := range queries {
		status := solver.SolveAssuming(q...)
		var model []bool
		if status == sat.StatusSat {
			model = solver.Model()
		}
		if stats {
			cum := solver.Stats()
			fmt.Fprintf(stdout, "c query %d assumptions=%d\n", i+1, len(q))
			printStats(stdout, cum.Sub(prev))
			prev = cum
		}
		code = printVerdict(stdout, status, model, solver.NumVars())
	}
	return code
}

// abs is integer absolute value (DIMACS literals are small).
func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
