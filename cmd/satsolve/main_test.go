package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sat"
)

func TestRunSat(t *testing.T) {
	in := strings.NewReader("p cnf 2 2\n1 2 0\n-1 0\n")
	var out bytes.Buffer
	code := run([]string{"-stats"}, in, &out)
	if code != 10 {
		t.Fatalf("exit code = %d, want 10", code)
	}
	s := out.String()
	if !strings.Contains(s, "s SATISFIABLE") {
		t.Fatalf("missing status line:\n%s", s)
	}
	if !strings.Contains(s, "v -1 2 0") {
		t.Fatalf("model line wrong:\n%s", s)
	}
	if !strings.Contains(s, "c vars=2") {
		t.Fatalf("stats missing:\n%s", s)
	}
}

func TestRunUnsat(t *testing.T) {
	in := strings.NewReader("p cnf 1 2\n1 0\n-1 0\n")
	var out bytes.Buffer
	code := run(nil, in, &out)
	if code != 20 {
		t.Fatalf("exit code = %d, want 20", code)
	}
	if !strings.Contains(out.String(), "s UNSATISFIABLE") {
		t.Fatalf("missing unsat line:\n%s", out.String())
	}
}

func TestRunParseError(t *testing.T) {
	in := strings.NewReader("p dnf 1 1\n1 0\n")
	var out bytes.Buffer
	if code := run(nil, in, &out); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunMissingFile(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"/nonexistent/file.cnf"}, strings.NewReader(""), &out); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, strings.NewReader(""), &out); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunPortfolioWorkers(t *testing.T) {
	in := strings.NewReader("p cnf 2 2\n1 2 0\n-1 0\n")
	var out bytes.Buffer
	code := run([]string{"-stats", "-workers", "3"}, in, &out)
	if code != 10 {
		t.Fatalf("exit code = %d, want 10\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "s SATISFIABLE") || !strings.Contains(s, "v -1 2 0") {
		t.Fatalf("portfolio output wrong:\n%s", s)
	}
	if !strings.Contains(s, "c portfolio workers=3") {
		t.Fatalf("portfolio stats missing:\n%s", s)
	}
}

func TestRunCubeUnsat(t *testing.T) {
	in := strings.NewReader("p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n")
	var out bytes.Buffer
	code := run([]string{"-stats", "-cube", "2", "-workers", "2"}, in, &out)
	if code != 20 {
		t.Fatalf("exit code = %d, want 20\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "s UNSATISFIABLE") {
		t.Fatalf("missing unsat line:\n%s", s)
	}
	if !strings.Contains(s, "c cube-and-conquer cubes=4 unsat-cubes=4") {
		t.Fatalf("cube stats missing:\n%s", s)
	}
}

// TestRunTimeout: a pigeonhole instance far beyond the 1ns deadline
// must come back UNKNOWN through the cooperative cancellation, for both
// the serial and the portfolio paths.
func TestRunTimeout(t *testing.T) {
	var dimacs strings.Builder
	if err := sat.PigeonholeCNF(10).WriteDIMACS(&dimacs); err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]string{nil, {"-workers", "2"}} {
		args := append([]string{"-timeout", "1ns"}, extra...)
		var out bytes.Buffer
		code := run(args, strings.NewReader(dimacs.String()), &out)
		if code != 0 || !strings.Contains(out.String(), "s UNKNOWN") {
			t.Fatalf("args %v: exit=%d output:\n%s", args, code, out.String())
		}
	}
}

func TestRunIncremental(t *testing.T) {
	// (x1 ∨ x2): SAT under x1, SAT under ¬x1 (forces x2), UNSAT under
	// {¬x1, ¬x2}.
	in := strings.NewReader("p inccnf\np cnf 2 1\n1 2 0\na 1 0\na -1 0\na -1 -2 0\n")
	var out bytes.Buffer
	code := run([]string{"-incremental", "-stats"}, in, &out)
	if code != 20 { // last query is UNSAT
		t.Fatalf("exit code = %d, want 20:\n%s", code, out.String())
	}
	s := out.String()
	if n := strings.Count(s, "s SATISFIABLE"); n != 2 {
		t.Fatalf("want 2 SAT answers, got %d:\n%s", n, s)
	}
	if n := strings.Count(s, "s UNSATISFIABLE"); n != 1 {
		t.Fatalf("want 1 UNSAT answer, got %d:\n%s", n, s)
	}
	if !strings.Contains(s, "c query 3 assumptions=2") {
		t.Fatalf("missing per-query stats header:\n%s", s)
	}
	if !strings.Contains(s, "c arena gcs=") {
		t.Fatalf("missing arena stats:\n%s", s)
	}
}

func TestRunIncrementalRejectsParallel(t *testing.T) {
	in := strings.NewReader("p cnf 1 1\n1 0\n")
	var out bytes.Buffer
	if code := run([]string{"-incremental", "-workers", "2"}, in, &out); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunStatsLBDProfile(t *testing.T) {
	// PHP(5,4) is UNSAT with enough conflicts to learn clauses.
	var in bytes.Buffer
	cnf := sat.PigeonholeCNF(4)
	in.WriteString("p cnf ")
	in.WriteString(itoa(cnf.NumVars))
	in.WriteString(" ")
	in.WriteString(itoa(cnf.NumClauses()))
	in.WriteString("\n")
	for _, c := range cnf.Clauses {
		for _, l := range c {
			in.WriteString(l.String())
			in.WriteString(" ")
		}
		in.WriteString("0\n")
	}
	var out bytes.Buffer
	if code := run([]string{"-stats"}, &in, &out); code != 20 {
		t.Fatalf("exit code = %d, want 20:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "c lbd mean=") {
		t.Fatalf("missing LBD profile:\n%s", out.String())
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
