// Command vnmap embeds a virtual network onto a physical network with
// the MCA auction and k-shortest-path link mapping, reading the problem
// from JSON and writing the mapping as JSON.
//
// Input schema:
//
//	{
//	  "physical": {
//	    "nodes": [{"cpu": 100}, {"cpu": 80}],
//	    "links": [{"a": 0, "b": 1, "bandwidth": 10}]
//	  },
//	  "virtual": {
//	    "nodes": [{"cpu": 30}],
//	    "links": []
//	  }
//	}
//
// Usage:
//
//	vnmap < request.json
//	vnmap -k 5 request.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
	"repro/internal/vnm"
)

type jsonPhysNode struct {
	CPU int64 `json:"cpu"`
}

type jsonLink struct {
	A         int     `json:"a"`
	B         int     `json:"b"`
	Bandwidth float64 `json:"bandwidth"`
}

type jsonVirtNode struct {
	CPU int64 `json:"cpu"`
}

type request struct {
	Physical struct {
		Nodes []jsonPhysNode `json:"nodes"`
		Links []jsonLink     `json:"links"`
	} `json:"physical"`
	Virtual struct {
		Nodes []jsonVirtNode `json:"nodes"`
		Links []jsonLink     `json:"links"`
	} `json:"virtual"`
}

type response struct {
	NodeMap   []int   `json:"node_map"`
	LinkPaths [][]int `json:"link_paths"`
	Rounds    int     `json:"auction_rounds"`
	Utility   int64   `json:"network_utility"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout))
}

func run(args []string, stdin io.Reader, stdout io.Writer) int {
	fs := flag.NewFlagSet("vnmap", flag.ContinueOnError)
	k := fs.Int("k", 3, "candidate paths per virtual link")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		in = f
	}
	var req request
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fmt.Fprintf(os.Stderr, "vnmap: bad request: %v\n", err)
		return 2
	}

	g := graph.New(len(req.Physical.Nodes))
	for _, l := range req.Physical.Links {
		g.AddWeightedEdge(l.A, l.B, l.Bandwidth)
	}
	phys := &vnm.PhysicalNetwork{Graph: g}
	for _, n := range req.Physical.Nodes {
		phys.Nodes = append(phys.Nodes, vnm.PhysicalNode{CPU: n.CPU})
	}
	vnet := &vnm.VirtualNetwork{}
	for _, n := range req.Virtual.Nodes {
		vnet.Nodes = append(vnet.Nodes, vnm.VirtualNode{CPU: n.CPU})
	}
	for _, l := range req.Virtual.Links {
		vnet.Links = append(vnet.Links, vnm.VirtualLink{A: l.A, B: l.B, Bandwidth: l.Bandwidth})
	}

	emb, err := vnm.NewEmbedder(phys, vnm.Options{KPaths: *k})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vnmap: %v\n", err)
		return 2
	}
	m, out, err := emb.Embed(vnet)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vnmap: %v\n", err)
		return 1
	}
	if err := vnm.ValidateMapping(phys, vnet, m); err != nil {
		fmt.Fprintf(os.Stderr, "vnmap: internal error, invalid mapping: %v\n", err)
		return 1
	}
	resp := response{
		NodeMap: m.NodeMap,
		Rounds:  out.Rounds,
		Utility: vnm.NetworkUtility(phys, vnet, m),
	}
	for _, p := range m.LinkPaths {
		resp.LinkPaths = append(resp.LinkPaths, p.Nodes)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
