package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const okRequest = `{
  "physical": {
    "nodes": [{"cpu": 100}, {"cpu": 80}, {"cpu": 60}],
    "links": [{"a": 0, "b": 1, "bandwidth": 10}, {"a": 1, "b": 2, "bandwidth": 10}]
  },
  "virtual": {
    "nodes": [{"cpu": 30}, {"cpu": 40}],
    "links": [{"a": 0, "b": 1, "bandwidth": 2}]
  }
}`

func TestRunEmbeds(t *testing.T) {
	var out bytes.Buffer
	code := run(nil, strings.NewReader(okRequest), &out)
	if code != 0 {
		t.Fatalf("exit code = %d\n%s", code, out.String())
	}
	var resp response
	if err := json.Unmarshal(out.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON output: %v\n%s", err, out.String())
	}
	if len(resp.NodeMap) != 2 || len(resp.LinkPaths) != 1 {
		t.Fatalf("incomplete mapping: %+v", resp)
	}
	if resp.Rounds <= 0 {
		t.Fatalf("missing auction rounds: %+v", resp)
	}
}

func TestRunInfeasible(t *testing.T) {
	req := `{
	  "physical": {"nodes": [{"cpu": 5}], "links": []},
	  "virtual": {"nodes": [{"cpu": 50}], "links": []}
	}`
	var out bytes.Buffer
	if code := run(nil, strings.NewReader(req), &out); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

func TestRunBadJSON(t *testing.T) {
	var out bytes.Buffer
	if code := run(nil, strings.NewReader(`{"unknown_field": 1}`), &out); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if code := run(nil, strings.NewReader(`not json`), &out); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunKFlag(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-k", "5"}, strings.NewReader(okRequest), &out); code != 0 {
		t.Fatalf("exit code = %d", code)
	}
}
