// Benchmark harness: one bench per figure/result in the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
// Each bench regenerates the corresponding artifact; EXPERIMENTS.md
// records paper-vs-measured. Run with:
//
//	go test -bench=. -benchmem .
package mcaverify_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	mcaverify "repro"
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/explore"
	"repro/internal/graph"
	"repro/internal/mca"
	"repro/internal/mcamodel"
	"repro/internal/netsim"
	"repro/internal/portfolio"
	"repro/internal/relalg"
	"repro/internal/sat"
)

// ---- E1: Fig. 1 — the two-agent three-item worked example ----

func fig1Agents() []*mca.Agent {
	pol := mca.Policy{Target: 2, Utility: mca.FlatUtility{}, Rebid: mca.RebidOnChange}
	a1 := mca.MustNewAgent(mca.Config{ID: 0, Items: 3, Base: []int64{10, 0, 30}, Policy: pol})
	a2 := mca.MustNewAgent(mca.Config{ID: 1, Items: 3, Base: []int64{20, 15, 0}, Policy: pol})
	return []*mca.Agent{a1, a2}
}

// BenchmarkFig1WorkedExample runs the Fig. 1 instance to consensus and
// validates the paper's post-agreement state b=(20,15,30), a=(2,2,1).
func BenchmarkFig1WorkedExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		agents := fig1Agents()
		r, err := mca.NewSyncRunner(agents, graph.Complete(2))
		if err != nil {
			b.Fatal(err)
		}
		out := r.Run(10)
		if !out.Converged {
			b.Fatal("Fig.1 did not converge")
		}
		v := agents[0].View()
		if v[0].Bid != 20 || v[0].Winner != 1 || v[1].Bid != 15 || v[1].Winner != 1 || v[2].Bid != 30 || v[2].Winner != 0 {
			b.Fatalf("Fig.1 state mismatch: %+v", v)
		}
	}
}

// ---- E2: Fig. 2 — the oscillation counterexample ----

func fig2Agents(util mca.Utility, release bool) []*mca.Agent {
	pol := mca.Policy{Target: 2, Utility: util, Rebid: mca.RebidOnChange, ReleaseOutbid: release}
	a1 := mca.MustNewAgent(mca.Config{ID: 0, Items: 2, Base: []int64{10, 15}, Policy: pol})
	a2 := mca.MustNewAgent(mca.Config{ID: 1, Items: 2, Base: []int64{15, 10}, Policy: pol})
	return []*mca.Agent{a1, a2}
}

// BenchmarkFig2Oscillation finds the oscillation counterexample for the
// non-sub-modular + release-outbid policy pair by exhaustive search.
func BenchmarkFig2Oscillation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := explore.Check(fig2Agents(mca.NonSubmodularSynergy{}, true), graph.Complete(2), explore.Options{})
		if v.OK || v.Violation != explore.ViolationOscillation {
			b.Fatalf("expected oscillation, got OK=%v violation=%v", v.OK, v.Violation)
		}
	}
}

// BenchmarkFig2SubmodularControl verifies the sub-modular control
// configuration (same valuations) converges.
func BenchmarkFig2SubmodularControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := explore.Check(fig2Agents(mca.SubmodularResidual{}, true), graph.Complete(2), explore.Options{})
		if !v.OK {
			b.Fatalf("control failed: %v", v.Violation)
		}
	}
}

// ---- E3: Result 1 — the policy combination matrix ----

// BenchmarkResult1PolicyMatrix sweeps the four policy combinations and
// checks that exactly non-sub-modular + release-outbid fails.
func BenchmarkResult1PolicyMatrix(b *testing.B) {
	utilities := []mca.Utility{mca.SubmodularResidual{}, mca.NonSubmodularSynergy{}}
	for i := 0; i < b.N; i++ {
		for _, u := range utilities {
			for _, rel := range []bool{false, true} {
				v := explore.Check(fig2Agents(u, rel), graph.Complete(2), explore.Options{})
				wantFail := !u.Submodular() && rel
				if v.OK == wantFail {
					b.Fatalf("combo %s/release=%v: OK=%v want fail=%v", u.Name(), rel, v.OK, wantFail)
				}
			}
		}
	}
	b.ReportMetric(4, "combos/op")
}

// ---- E4: Result 2 — the rebidding attack ----

func attackAgents() []*mca.Agent {
	pol := mca.Policy{Target: 1, Utility: mca.EscalatingUtility{Cap: 1 << 20}, Rebid: mca.RebidAlways}
	a0 := mca.MustNewAgent(mca.Config{ID: 0, Items: 1, Base: []int64{10}, Policy: pol})
	a1 := mca.MustNewAgent(mca.Config{ID: 1, Items: 1, Base: []int64{5}, Policy: pol})
	return []*mca.Agent{a0, a1}
}

// BenchmarkResult2RebidAttack shows that removing the Remark 1 condition
// breaks the consensus assertion within the message bound.
func BenchmarkResult2RebidAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := explore.Check(attackAgents(), graph.Complete(2), explore.Options{})
		if v.OK {
			b.Fatal("attack should break consensus")
		}
	}
}

// ---- E5: abstraction efficiency (naive vs optimized encodings) ----

// BenchmarkEncodingNaive translates the pre-optimization model at the
// paper's scope (3 pnodes, 2 vnodes) and reports clause counts.
func BenchmarkEncodingNaive(b *testing.B) {
	var clauses, vars int
	for i := 0; i < b.N; i++ {
		e, err := mcamodel.BuildNaive(mcamodel.PaperScope())
		if err != nil {
			b.Fatal(err)
		}
		m := mcamodel.MeasureTranslation(e)
		clauses, vars = m.Clauses, m.PrimaryVars+m.AuxVars
	}
	b.ReportMetric(float64(clauses), "clauses")
	b.ReportMetric(float64(vars), "vars")
}

// BenchmarkEncodingOptimized translates the optimized model at the same
// scope; the clause metric should come out well below the naive one.
func BenchmarkEncodingOptimized(b *testing.B) {
	var clauses, vars int
	for i := 0; i < b.N; i++ {
		e, err := mcamodel.BuildOptimized(mcamodel.PaperScope())
		if err != nil {
			b.Fatal(err)
		}
		m := mcamodel.MeasureTranslation(e)
		clauses, vars = m.Clauses, m.PrimaryVars+m.AuxVars
	}
	b.ReportMetric(float64(clauses), "clauses")
	b.ReportMetric(float64(vars), "vars")
}

// BenchmarkEncodingCheckNaive/Optimized run the full consensus check
// (translate + SAT solve) on both encodings, the end-to-end time the
// paper's "a day vs under two hours" comparison is about.
func BenchmarkEncodingCheckNaive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := mcamodel.BuildNaive(mcamodel.PaperScope())
		if err != nil {
			b.Fatal(err)
		}
		m := mcamodel.CheckConsensus(e, sat.Options{})
		if m.CheckStatus == sat.StatusUnknown {
			b.Fatal("check inconclusive")
		}
	}
}

func BenchmarkEncodingCheckOptimized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := mcamodel.BuildOptimized(mcamodel.PaperScope())
		if err != nil {
			b.Fatal(err)
		}
		m := mcamodel.CheckConsensus(e, sat.Options{})
		if m.CheckStatus == sat.StatusUnknown {
			b.Fatal("check inconclusive")
		}
	}
}

// ---- E6: the D·|J| consensus message bound ----

// BenchmarkConsensusBound runs honest sub-modular auctions across
// topologies and verifies convergence within the D·|J| round bound,
// reporting the average rounds used.
func BenchmarkConsensusBound(b *testing.B) {
	tops := []graph.Topology{graph.TopologyLine, graph.TopologyRing, graph.TopologyStar, graph.TopologyComplete}
	rounds := 0
	runs := 0
	for i := 0; i < b.N; i++ {
		for ti, tp := range tops {
			n, items := 4, 3
			g := graph.Build(tp, n, int64(ti))
			agents := make([]*mca.Agent, n)
			for ai := range agents {
				base := make([]int64, items)
				for j := range base {
					base[j] = int64(10 + (ai*7+j*3)%17)
				}
				agents[ai] = mca.MustNewAgent(mca.Config{
					ID: mca.AgentID(ai), Items: items, Base: base,
					Policy: mca.Policy{Target: items, Utility: mca.SubmodularResidual{}, ReleaseOutbid: true, Rebid: mca.RebidOnChange},
				})
			}
			r, err := mca.NewSyncRunner(agents, g)
			if err != nil {
				b.Fatal(err)
			}
			bound := mca.MessageBound(g, items)
			out := r.Run(bound + 1)
			if !out.Converged {
				b.Fatalf("%v: no consensus within D·|J|=%d rounds", tp, bound)
			}
			rounds += out.Rounds
			runs++
		}
	}
	b.ReportMetric(float64(rounds)/float64(runs), "rounds/run")
}

// ---- E7: the static model's uniqueID check ----

// BenchmarkStaticUniqueIDCheck reproduces "check uniqueID for 3" on the
// relational stack.
func BenchmarkStaticUniqueIDCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := mcamodel.Scope{PNodes: 3, VNodes: 2, Values: 3, States: 2, Msgs: 1}
		e, err := mcamodel.BuildOptimized(sc)
		if err != nil {
			b.Fatal(err)
		}
		ok, _ := mcamodel.RunSatisfiable(e, sat.Options{})
		if !ok {
			b.Fatal("static model unsatisfiable")
		}
	}
}

// ---- Ablations ----

// BenchmarkAblationResolutionFullTable vs MaxMerge: the full
// asynchronous conflict table against the naive max-merge rule on the
// same honest workload (max-merge cannot retract, so it is only run on
// non-releasing agents where both converge).
func BenchmarkAblationResolutionFullTable(b *testing.B) {
	benchResolution(b, nil)
}

func BenchmarkAblationResolutionMaxMerge(b *testing.B) {
	benchResolution(b, mca.MaxMergeResolve)
}

func benchResolution(b *testing.B, resolver mca.Resolver) {
	for i := 0; i < b.N; i++ {
		n, items := 4, 3
		g := graph.Ring(n)
		agents := make([]*mca.Agent, n)
		for ai := range agents {
			base := make([]int64, items)
			for j := range base {
				base[j] = int64(5 + (ai*5+j*2)%13)
			}
			agents[ai] = mca.MustNewAgent(mca.Config{
				ID: mca.AgentID(ai), Items: items, Base: base,
				Policy:   mca.Policy{Target: items, Utility: mca.FlatUtility{}, Rebid: mca.RebidNever},
				Resolver: resolver,
			})
		}
		r, err := mca.NewSyncRunner(agents, g)
		if err != nil {
			b.Fatal(err)
		}
		out := r.Run(40)
		if !out.Converged {
			b.Fatal("ablation workload did not converge")
		}
	}
}

// BenchmarkAblationVisitedSet explores the Fig. 1 instance with and
// without state memoization.
func BenchmarkAblationVisitedSetOn(b *testing.B) {
	benchVisited(b, false)
}

func BenchmarkAblationVisitedSetOff(b *testing.B) {
	benchVisited(b, true)
}

func benchVisited(b *testing.B, disable bool) {
	states := 0
	for i := 0; i < b.N; i++ {
		v := explore.Check(fig1Agents(), graph.Complete(2), explore.Options{DisableVisitedSet: disable})
		if !v.OK {
			b.Fatalf("Fig.1 check failed: %v", v.Violation)
		}
		states = v.States
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkAblationSATHeuristics compares VSIDS+restarts against static
// ordering on the naive model's consensus check CNF.
func BenchmarkAblationSATVSIDS(b *testing.B) {
	benchSATOptions(b, sat.Options{})
}

func BenchmarkAblationSATStaticOrder(b *testing.B) {
	benchSATOptions(b, sat.Options{DisableVSIDS: true, DisableRestarts: true, DisablePhaseSaving: true})
}

func benchSATOptions(b *testing.B, opts sat.Options) {
	sc := mcamodel.Scope{PNodes: 2, VNodes: 2, Values: 3, States: 2, Msgs: 1}
	for i := 0; i < b.N; i++ {
		e, err := mcamodel.BuildOptimized(sc)
		if err != nil {
			b.Fatal(err)
		}
		m := mcamodel.CheckConsensus(e, opts)
		if m.CheckStatus == sat.StatusUnknown {
			b.Fatal("inconclusive")
		}
	}
}

// ---- Protocol-scale benches ----

// BenchmarkSyncAuction measures the synchronous protocol across network
// sizes.
func BenchmarkSyncAuction(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				items := 4
				g := graph.RandomConnected(n, 0.3, int64(n))
				agents := make([]*mca.Agent, n)
				for ai := range agents {
					base := make([]int64, items)
					for j := range base {
						base[j] = int64(1 + (ai*11+j*7)%23)
					}
					agents[ai] = mca.MustNewAgent(mca.Config{
						ID: mca.AgentID(ai), Items: items, Base: base,
						Policy: mca.Policy{Target: 2, Utility: mca.SubmodularResidual{}, ReleaseOutbid: true, Rebid: mca.RebidOnChange},
					})
				}
				r, err := mca.NewSyncRunner(agents, g)
				if err != nil {
					b.Fatal(err)
				}
				out := r.Run(4*mca.MessageBound(g, items) + 8)
				if !out.Converged {
					b.Fatalf("n=%d did not converge", n)
				}
			}
		})
	}
}

// BenchmarkAsyncAuction measures the randomized asynchronous runner.
func BenchmarkAsyncAuction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n, items := 6, 3
		g := graph.RandomConnected(n, 0.4, 11)
		agents := make([]*mca.Agent, n)
		for ai := range agents {
			base := make([]int64, items)
			for j := range base {
				base[j] = int64(1 + (ai*13+j*5)%19)
			}
			agents[ai] = mca.MustNewAgent(mca.Config{
				ID: mca.AgentID(ai), Items: items, Base: base,
				Policy: mca.Policy{Target: items, Utility: mca.SubmodularResidual{}, ReleaseOutbid: true, Rebid: mca.RebidOnChange},
			})
		}
		out := netsim.RunAsync(agents, g, int64(i), 100000)
		if !out.Converged {
			b.Fatal("async auction did not converge")
		}
	}
}

// BenchmarkEmbedding measures end-to-end virtual network embedding.
func BenchmarkEmbedding(b *testing.B) {
	g := mcaverify.RandomConnectedGraph(10, 0.3, 3)
	for _, e := range g.Edges() {
		g.AddWeightedEdge(e.U, e.V, 10)
	}
	phys := &mcaverify.PhysicalNetwork{Graph: g}
	for i := 0; i < g.N(); i++ {
		phys.Nodes = append(phys.Nodes, mcaverify.PhysicalNode{CPU: 200})
	}
	vnet := &mcaverify.VirtualNetwork{
		Nodes: []mcaverify.VirtualNode{{CPU: 20}, {CPU: 30}, {CPU: 25}},
		Links: []mcaverify.VirtualLink{{A: 0, B: 1, Bandwidth: 2}, {A: 1, B: 2, Bandwidth: 2}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb, err := mcaverify.NewEmbedder(phys, mcaverify.EmbedOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := emb.Embed(vnet); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodingScalingSeries regenerates the E5 scope series
// (2..4 agents), reporting the clause ratio at the largest scope.
func BenchmarkEncodingScalingSeries(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ms, err := mcamodel.ScalingSeries([]int{2, 3, 4}, mcamodel.PaperScope())
		if err != nil {
			b.Fatal(err)
		}
		last := ms[len(ms)-2:]
		ratio = float64(last[1].Clauses) / float64(last[0].Clauses)
	}
	b.ReportMetric(ratio, "opt/naive-clauses")
}

// BenchmarkResult1SweepAPI exercises the library-level policy sweep.
func BenchmarkResult1SweepAPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := explore.PolicySweep(explore.DefaultCombos(), explore.SweepConfig{})
		if err != nil {
			b.Fatal(err)
		}
		fails := 0
		for _, r := range rows {
			if !r.Verdict.OK {
				fails++
			}
		}
		if fails != 1 {
			b.Fatalf("sweep fails = %d, want exactly 1", fails)
		}
	}
}

// BenchmarkDuplicateDeliveryCheck measures verification under
// at-least-once channel fault injection.
func BenchmarkDuplicateDeliveryCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := explore.Check(fig1Agents(), graph.Complete(2),
			explore.Options{DuplicateDeliveries: true, MaxStates: 500000})
		if !v.OK {
			b.Fatalf("duplicates broke Fig.1: %v", v.Violation)
		}
	}
}

// ---- E8/E9: the parallel engines ----

// BenchmarkEncodingCheckPortfolio runs the paper-scope optimized
// consensus check through the SAT portfolio. Member 0 of the portfolio
// is the reference configuration, so on any machine this is within
// scheduling noise of BenchmarkEncodingCheckOptimized, and on a
// multi-core machine the diversified racers can only win earlier.
func BenchmarkEncodingCheckPortfolio(b *testing.B) {
	benchParallelCheck(b, relalg.ParallelOptions{Workers: runtime.GOMAXPROCS(0)})
}

// BenchmarkEncodingCheckCube runs the same check through
// cube-and-conquer with a 2^4 split.
func BenchmarkEncodingCheckCube(b *testing.B) {
	benchParallelCheck(b, relalg.ParallelOptions{Workers: runtime.GOMAXPROCS(0), CubeVars: 4})
}

func benchParallelCheck(b *testing.B, par relalg.ParallelOptions) {
	for i := 0; i < b.N; i++ {
		e, err := mcamodel.BuildOptimized(mcamodel.PaperScope())
		if err != nil {
			b.Fatal(err)
		}
		m := mcamodel.CheckConsensusParallel(e, sat.Options{}, par)
		if m.CheckStatus == sat.StatusUnknown {
			b.Fatal("check inconclusive")
		}
	}
}

// BenchmarkConsensusSolve* isolates the SAT-solving phase of the
// consensus query at a scope above the paper's (4 pnodes, 3 vnodes):
// the CNF is translated once, then each backend solves it from scratch
// per iteration. Serial pays the same clause load as the parallel
// backends, so this is the apples-to-apples "solving the query"
// comparison; with one worker the portfolio degenerates to the serial
// reference configuration plus scheduling noise.
func consensusQueryCNF(b *testing.B) *sat.CNF {
	b.Helper()
	sc := mcamodel.Scope{PNodes: 4, VNodes: 3, Values: 4, States: 3, Msgs: 2, IntBitwidth: 4}
	e, err := mcamodel.BuildOptimized(sc)
	if err != nil {
		b.Fatal(err)
	}
	cnf, _ := relalg.TranslateToCNF(e.Bounds, relalg.And(e.Background, relalg.Not(e.Consensus)))
	return cnf
}

func BenchmarkConsensusSolveSerial(b *testing.B) {
	cnf := consensusQueryCNF(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sat.NewSolver()
		if err := cnf.LoadInto(s); err != nil {
			b.Fatal(err)
		}
		if s.Solve() == sat.StatusUnknown {
			b.Fatal("inconclusive")
		}
	}
}

func BenchmarkConsensusSolvePortfolio(b *testing.B) {
	cnf := consensusQueryCNF(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := portfolio.SolvePortfolio(cnf, portfolio.Options{Workers: runtime.GOMAXPROCS(0)})
		if res.Status == sat.StatusUnknown {
			b.Fatal("inconclusive")
		}
	}
}

func BenchmarkConsensusSolveCube(b *testing.B) {
	cnf := consensusQueryCNF(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := portfolio.SolveCube(cnf, portfolio.Options{Workers: runtime.GOMAXPROCS(0), CubeVars: 4})
		if res.Status == sat.StatusUnknown {
			b.Fatal("inconclusive")
		}
	}
}

// BenchmarkPortfolioRaceUnsat races the portfolio on a hard UNSAT
// instance (pigeonhole), where diversified restart schedules genuinely
// diverge in runtime.
func BenchmarkPortfolioRaceUnsat(b *testing.B) {
	f := sat.PigeonholeCNF(7)
	for i := 0; i < b.N; i++ {
		res := portfolio.SolvePortfolio(f, portfolio.Options{Workers: runtime.GOMAXPROCS(0)})
		if res.Status != sat.StatusUnsat {
			b.Fatalf("PHP = %v", res.Status)
		}
	}
}

// BenchmarkCubeAndConquerUnsat splits the same instance into 2^5 cubes.
func BenchmarkCubeAndConquerUnsat(b *testing.B) {
	f := sat.PigeonholeCNF(7)
	for i := 0; i < b.N; i++ {
		res := portfolio.SolveCube(f, portfolio.Options{Workers: runtime.GOMAXPROCS(0), CubeVars: 5})
		if res.Status != sat.StatusUnsat {
			b.Fatalf("PHP = %v", res.Status)
		}
	}
}

// ---- SAT hot path: propagation and conflict-bound solving ----

// propagationChainCNF builds a propagation-bound instance: a long
// binary implication chain x0 → x1 → ... → x_{n-1} plus wider implied
// clauses that generate watch-list traffic without changing the
// semantics. A single assumption at either end forces the whole chain
// by unit propagation with essentially no decisions or conflicts, so
// ns/op isolates the propagation loop and watch scheme.
func propagationChainCNF(n int) *sat.CNF {
	f := &sat.CNF{NumVars: n}
	for i := 0; i+1 < n; i++ {
		f.AddClause(sat.NegLit(sat.Var(i)), sat.PosLit(sat.Var(i+1)))
	}
	for i := 0; i+3 < n; i += 3 {
		// Implied by the chain, but the solver still has to watch and
		// walk them: long-clause traffic with frequent blocker hits.
		f.AddClause(sat.NegLit(sat.Var(i)), sat.PosLit(sat.Var(i+1)),
			sat.PosLit(sat.Var(i+2)), sat.PosLit(sat.Var(i+3)))
	}
	return f
}

// BenchmarkSATPropagation repeatedly re-propagates a 4000-variable
// implication chain through SolveAssuming from both ends. Tracked in
// the benchmark trajectory (props/s, allocs/op).
func BenchmarkSATPropagation(b *testing.B) {
	const n = 4000
	cnf := propagationChainCNF(n)
	s := sat.NewSolver()
	if err := cnf.LoadInto(s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.SolveAssuming(sat.PosLit(sat.Var(0))) != sat.StatusSat {
			b.Fatal("chain head assumption must be sat")
		}
		if s.SolveAssuming(sat.NegLit(sat.Var(n-1))) != sat.StatusSat {
			b.Fatal("chain tail assumption must be sat")
		}
	}
	b.StopTimer()
	props := float64(s.Stats().Propagations)
	b.ReportMetric(props/b.Elapsed().Seconds(), "props/s")
}

// BenchmarkSolvePigeonhole solves PHP(8,7) from scratch — an UNSAT
// family whose refutation is dominated by propagation and conflict
// analysis, so it tracks the whole CDCL hot path (clause layout, learnt
// management, backtracking), not just the watch walk.
func BenchmarkSolvePigeonhole(b *testing.B) {
	f := sat.PigeonholeCNF(7)
	b.ReportAllocs()
	var props int64
	for i := 0; i < b.N; i++ {
		s := sat.NewSolver()
		if err := f.LoadInto(s); err != nil {
			b.Fatal(err)
		}
		if s.Solve() != sat.StatusUnsat {
			b.Fatal("pigeonhole must be unsat")
		}
		props += s.Stats().Propagations
	}
	b.ReportMetric(float64(props)/b.Elapsed().Seconds(), "props/s")
}

// BenchmarkIncrementalSweep compares the two ways of deciding an
// assert-state sweep grid (all variants of one encoding share bounds
// and axioms): "oneshot" re-translates and re-solves every variant
// from scratch, "incremental" keeps one persistent session per base
// family, so later variants reuse the translation and every learnt
// clause. The /incremental ÷ /oneshot ns/op ratio is the tracked
// speedup of incremental sweep solving (BENCH_7.json).
func BenchmarkIncrementalSweep(b *testing.B) {
	sc := mcamodel.Scope{PNodes: 3, VNodes: 2, Values: 3, States: 3, Msgs: 2, IntBitwidth: 3}
	enc, err := mcamodel.BuildOptimized(sc)
	if err != nil {
		b.Fatal(err)
	}
	var scenarios []engine.Scenario
	for k := 0; k <= sc.States; k++ {
		variant := enc
		if k > 0 {
			if variant, err = enc.WithAssertState(k); err != nil {
				b.Fatal(err)
			}
		}
		scenarios = append(scenarios, engine.Scenario{
			Name:  fmt.Sprintf("optimized/assert_state=%d", k),
			Model: variant,
		})
	}
	run := func(b *testing.B, incremental bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := engine.NewRunner(engine.RunnerOptions{
				Workers:        1,
				Engine:         engine.SAT{},
				IncrementalSAT: incremental,
			})
			results, sum := r.Run(context.Background(), scenarios)
			if sum.Errors+sum.Inconclusive > 0 {
				b.Fatalf("sweep failed: %+v", sum)
			}
			_ = results
		}
	}
	b.Run("oneshot", func(b *testing.B) { run(b, false) })
	b.Run("incremental", func(b *testing.B) { run(b, true) })
}

// BenchmarkExploreSerial/ParallelExplore* explore the same ~100K-state
// three-agent instance with the serial DFS and the sharded frontier at
// increasing worker counts. Worker counts beyond GOMAXPROCS only add
// scheduling overhead, so the interesting rows are the ones up to the
// machine's core count; verdict and state count are asserted identical
// across all rows.
func exploreBenchAgents() []*mca.Agent {
	pol := mca.Policy{Target: 2, Utility: mca.FlatUtility{}, Rebid: mca.RebidOnChange}
	bases := [][]int64{{12, 8}, {8, 12}, {4, 8}}
	agents := make([]*mca.Agent, len(bases))
	for i, bb := range bases {
		agents[i] = mca.MustNewAgent(mca.Config{ID: mca.AgentID(i), Items: 2, Base: bb, Policy: pol})
	}
	return agents
}

func BenchmarkExploreSerial(b *testing.B) {
	b.ReportAllocs() // allocs/op is a tracked metric of the hot-path work (BENCH_5.json)
	states := 0
	for i := 0; i < b.N; i++ {
		v := explore.Check(exploreBenchAgents(), graph.Ring(3), explore.Options{MaxStates: 2000000})
		if !v.OK {
			b.Fatalf("bench instance failed: %v", v.Violation)
		}
		states = v.States
	}
	b.ReportMetric(float64(states), "states")
}

func BenchmarkParallelExplore(b *testing.B) {
	var refStates int
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs() // allocs/op is a tracked metric of the hot-path work (BENCH_5.json)
			states := 0
			for i := 0; i < b.N; i++ {
				v := explore.CheckParallel(exploreBenchAgents(), graph.Ring(3), explore.Options{MaxStates: 2000000}, workers)
				if !v.OK {
					b.Fatalf("workers=%d failed: %v", workers, v.Violation)
				}
				states = v.States
			}
			if refStates == 0 {
				refStates = states
			} else if states != refStates {
				b.Fatalf("workers=%d explored %d states, want %d", workers, states, refStates)
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkOutOfCoreExplore measures the out-of-core mechanisms on the
// same ~100K-state instance: the serial lossy stores (bitstate sized
// comfortably, so the run stays effectively exhaustive), the sharded
// frontier with disk spill forced on, and a full checkpoint+resume
// cycle (cap midway, serialize, resume to completion).
func BenchmarkOutOfCoreExplore(b *testing.B) {
	opts := explore.Options{MaxStates: 2000000}
	b.Run("serial-bitstate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := opts
			o.Store, o.StoreBits = explore.StoreBitstate, 24
			v := explore.Check(exploreBenchAgents(), graph.Ring(3), o)
			if !v.OK || v.MissProb <= 0 {
				b.Fatalf("bitstate run: OK=%v missprob=%v", v.OK, v.MissProb)
			}
		}
	})
	b.Run("serial-hashcompact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := opts
			o.Store, o.StoreBits = explore.StoreHashCompact, 18
			v := explore.Check(exploreBenchAgents(), graph.Ring(3), o)
			if !v.OK {
				b.Fatalf("hash-compact run failed: %v", v.Violation)
			}
		}
	})
	b.Run("parallel-spill", func(b *testing.B) {
		b.ReportAllocs()
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			o := opts
			o.SpillDir, o.SpillStates = dir, 1<<13
			v := explore.CheckParallel(exploreBenchAgents(), graph.Ring(3), o, 4)
			if !v.OK {
				b.Fatalf("spill run failed: %v", v.Violation)
			}
			if v.Store.Spilled == 0 {
				b.Fatal("spill never engaged")
			}
		}
	})
	b.Run("checkpoint-resume", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := opts
			o.MaxStates = 50000
			_, rs, err := explore.CheckParallelFrom(exploreBenchAgents(), graph.Ring(3), o, 4, nil, true)
			if err != nil || rs == nil {
				b.Fatalf("cap leg: rs=%v err=%v", rs != nil, err)
			}
			rs2, err := explore.DecodeRunState(explore.EncodeRunState(rs))
			if err != nil {
				b.Fatal(err)
			}
			v, _, err := explore.CheckParallelFrom(exploreBenchAgents(), graph.Ring(3), opts, 4, rs2, true)
			if err != nil || !v.OK {
				b.Fatalf("resume leg: OK=%v err=%v", v.OK, err)
			}
		}
	})
}

// BenchmarkAblationSymmetryOn/Off: instance enumeration with and without
// lex-leader symmetry breaking on a symmetric relational problem.
func BenchmarkAblationSymmetryOff(b *testing.B) {
	benchSymmetry(b, false)
}

func BenchmarkAblationSymmetryOn(b *testing.B) {
	benchSymmetry(b, true)
}

func benchSymmetry(b *testing.B, breakSym bool) {
	count := 0
	for i := 0; i < b.N; i++ {
		u := relalg.NewUniverse("a", "b", "c", "d", "e")
		bounds := relalg.NewBounds(u)
		r := relalg.NewRelation("r", 1)
		bounds.BoundUpper(r, relalg.AllTuples(u, 1))
		p := &relalg.Problem{Bounds: bounds, Formula: relalg.AtMost(relalg.R(r), 2)}
		var classes []relalg.SymmetryClass
		if breakSym {
			classes = []relalg.SymmetryClass{{Atoms: []int{0, 1, 2, 3, 4}}}
		}
		count = relalg.CountInstances(p, classes)
	}
	b.ReportMetric(float64(count), "instances")
}

// ---- Engine layer: batch runner throughput ----

// benchSweepScenarios builds a mixed sweep (policies × faults) of
// simulation-checked scenarios, sized for throughput measurement.
func benchSweepScenarios(n int) []engine.Scenario {
	utilities := []mca.Utility{mca.SubmodularResidual{}, mca.NonSubmodularSynergy{}}
	faults := []netsim.Faults{
		{Drop: 0.2},
		{Delay: 2},
		{Partitions: [][]int{{0}, {1}}, HealAfter: 2},
	}
	g := graph.Complete(2)
	out := make([]engine.Scenario, 0, n)
	for i := 0; len(out) < n; i++ {
		u := utilities[i%len(utilities)]
		pol := mca.Policy{Target: 2, Utility: u, ReleaseOutbid: i%2 == 0, Rebid: mca.RebidOnChange}
		out = append(out, engine.Scenario{
			Name: fmt.Sprintf("bench-%d", i),
			AgentSpecs: []mca.Config{
				{ID: 0, Items: 2, Base: []int64{10, 15}, Policy: pol},
				{ID: 1, Items: 2, Base: []int64{15, 10}, Policy: pol},
			},
			Graph:  g,
			Faults: faults[i%len(faults)],
		})
	}
	return out
}

// BenchmarkRunnerSweep measures batch-runner throughput
// (scenarios/sec) by worker count on a 96-scenario fault-model sweep —
// the tracking metric for sweep-scaling work.
func BenchmarkRunnerSweep(b *testing.B) {
	scenarios := benchSweepScenarios(96)
	eng := engine.Simulation{Runs: 4}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := engine.NewRunner(engine.RunnerOptions{Workers: workers, Engine: eng})
			var sum engine.Summary
			for i := 0; i < b.N; i++ {
				_, sum = r.Run(context.Background(), scenarios)
				if sum.Total != len(scenarios) || sum.Errors != 0 {
					b.Fatalf("sweep broken: %+v", sum)
				}
			}
			perSec := float64(len(scenarios)) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(perSec, "scenarios/s")
		})
	}
}

// BenchmarkRunnerSweepCached contrasts a cold sweep (every scenario
// verified) with a warm sweep over the content-addressed result cache
// (every scenario a cache hit) — the speedup repeated production sweeps
// get from skipping already-verified scenarios.
func BenchmarkRunnerSweepCached(b *testing.B) {
	scenarios := benchSweepScenarios(96)
	// Distinct content per scenario: the cache is content-addressed, so
	// identical cells would collide and turn the cold pass warm.
	for i := range scenarios {
		scenarios[i].AgentSpecs[0].Base = []int64{int64(10 + i), 15}
		scenarios[i].AgentSpecs[1].Base = []int64{15, int64(10 + i)}
	}
	eng := engine.Simulation{Runs: 4}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := cache.New(cache.Options{Capacity: len(scenarios)})
			if err != nil {
				b.Fatal(err)
			}
			r := engine.NewRunner(engine.RunnerOptions{Workers: 4, Engine: eng, Cache: c})
			if _, sum := r.Run(context.Background(), scenarios); sum.CacheHits != 0 {
				b.Fatalf("cold pass hit the cache: %+v", sum)
			}
		}
		b.ReportMetric(float64(len(scenarios))*float64(b.N)/b.Elapsed().Seconds(), "scenarios/s")
	})
	b.Run("warm", func(b *testing.B) {
		c, err := cache.New(cache.Options{Capacity: len(scenarios)})
		if err != nil {
			b.Fatal(err)
		}
		r := engine.NewRunner(engine.RunnerOptions{Workers: 4, Engine: eng, Cache: c})
		r.Run(context.Background(), scenarios) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, sum := r.Run(context.Background(), scenarios); sum.CacheHits != sum.Total {
				b.Fatalf("warm pass missed the cache: %+v", sum)
			}
		}
		b.ReportMetric(float64(len(scenarios))*float64(b.N)/b.Elapsed().Seconds(), "scenarios/s")
	})
}

// BenchmarkVerifyExplicit measures single-scenario engine overhead
// against the direct explore.Check call it wraps.
func BenchmarkVerifyExplicit(b *testing.B) {
	pol := mca.Policy{Target: 2, Utility: mca.SubmodularResidual{}, Rebid: mca.RebidOnChange}
	s := engine.Scenario{
		Name: "bench",
		AgentSpecs: []mca.Config{
			{ID: 0, Items: 2, Base: []int64{10, 15}, Policy: pol},
			{ID: 1, Items: 2, Base: []int64{15, 10}, Policy: pol},
		},
		Graph: graph.Complete(2),
	}
	for i := 0; i < b.N; i++ {
		res := engine.Explicit{}.Verify(context.Background(), s)
		if res.Status != engine.StatusHolds {
			b.Fatalf("bench scenario failed: %v", res.Status)
		}
	}
}

// ---- Fuzzing layer: generation, oracle, shrinking ----

// BenchmarkGenerate measures corpus manufacturing throughput — pure
// generation, no verification. The generator must stay cheap enough
// that corpus cost is always dominated by the engines.
func BenchmarkGenerate(b *testing.B) {
	profile := mcaverify.DefaultFuzzProfile()
	profile.ModelProb = 0 // building relational models would dominate
	const n = 100
	for i := 0; i < b.N; i++ {
		scenarios, err := mcaverify.Generate(profile, int64(i), n)
		if err != nil {
			b.Fatal(err)
		}
		if len(scenarios) != n {
			b.Fatal("short corpus")
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "scenarios/s")
}

// BenchmarkShrinkFailure measures the delta-debugging descent on the
// bloated Fig. 2 oscillation: every accepted step re-verifies through
// the serial DFS.
func BenchmarkShrinkFailure(b *testing.B) {
	fight := mca.Policy{Target: 2, Utility: mca.NonSubmodularSynergy{}, Rebid: mca.RebidOnChange, ReleaseOutbid: true}
	idle := mca.Policy{Target: 1, Utility: mca.FlatUtility{}, Rebid: mca.RebidOnChange}
	s := engine.Scenario{
		Name: "bench-shrink",
		AgentSpecs: []mca.Config{
			{ID: 0, Items: 3, Base: []int64{10, 15, 0}, Policy: fight},
			{ID: 1, Items: 3, Base: []int64{15, 10, 0}, Policy: fight},
			{ID: 2, Items: 3, Base: []int64{1, 1, 2}, Policy: idle},
		},
		Graph:   graph.Complete(3),
		Explore: explore.Options{MaxStates: 20000, BoundSlack: 8, DuplicateDeliveries: true},
	}
	for i := 0; i < b.N; i++ {
		shrunk, _, err := mcaverify.ShrinkFailure(context.Background(), s, mcaverify.ExplicitEngine{}, mcaverify.ShrinkOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(shrunk.AgentSpecs) != 2 {
			b.Fatalf("shrink kept %d agents", len(shrunk.AgentSpecs))
		}
	}
}

// BenchmarkDifferentialOracle measures oracle throughput on a small
// fixed corpus: scenarios/s across the default panel, the number that
// scales a fuzzing campaign.
func BenchmarkDifferentialOracle(b *testing.B) {
	profile := mcaverify.DefaultFuzzProfile()
	profile.Agents = mcaverify.FuzzIntRange{Min: 2, Max: 3}
	profile.Items = mcaverify.FuzzIntRange{Min: 2, Max: 2}
	profile.MaxStates = mcaverify.FuzzIntRange{Min: 2000, Max: 8000}
	profile.ModelProb = 0 // SAT legs measured by the E5 benches
	const n = 16
	scenarios, err := mcaverify.Generate(profile, 42, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sum := mcaverify.DiffSweep(context.Background(), scenarios, mcaverify.DiffOptions{Workers: 4})
		if sum.Disagreements != 0 {
			b.Fatalf("bench corpus disagrees: %+v", sum)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "scenarios/s")
}

// BenchmarkCoverageFuzz measures the coverage-guided loop end to end —
// generation, mutation, oracle verification, and bucket folding — the
// round throughput of a coverage campaign, with the discovered bucket
// count reported alongside.
func BenchmarkCoverageFuzz(b *testing.B) {
	profile := mcaverify.DefaultFuzzProfile()
	profile.Agents = mcaverify.FuzzIntRange{Min: 2, Max: 3}
	profile.Items = mcaverify.FuzzIntRange{Min: 2, Max: 2}
	profile.MaxStates = mcaverify.FuzzIntRange{Min: 2000, Max: 8000}
	profile.ModelProb = 0 // SAT legs measured by the E5 benches
	const rounds, perRound = 3, 8
	buckets := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mcaverify.FuzzCoverage(context.Background(), mcaverify.FuzzCoverageOptions{
			Profile: profile, Seed: 42, Rounds: rounds, PerRound: perRound,
			Diff: mcaverify.DiffOptions{Workers: 4},
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Disagreements) != 0 {
			b.Fatalf("bench corpus disagrees: %d", len(res.Disagreements))
		}
		buckets = len(res.Buckets)
	}
	b.ReportMetric(float64(rounds*perRound)*float64(b.N)/b.Elapsed().Seconds(), "scenarios/s")
	b.ReportMetric(float64(buckets), "buckets")
}
