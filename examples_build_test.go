package mcaverify_test

import (
	"os/exec"
	"testing"
)

// TestExamplesBuild compiles every example program. The examples have
// no test files of their own, so without this smoke check a refactor of
// the public API could break them silently.
func TestExamplesBuild(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	out, err := exec.Command("go", "build", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("examples failed to build: %v\n%s", err, out)
	}
}
