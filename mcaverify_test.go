package mcaverify_test

import (
	"context"
	"testing"

	mcaverify "repro"
)

// The quickstart flow from the package documentation must work verbatim.
func TestQuickstartFlow(t *testing.T) {
	pol := mcaverify.Policy{Target: 2, Utility: mcaverify.SubmodularResidual{}, Rebid: mcaverify.RebidOnChange}
	a0, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 0, Items: 3, Base: []int64{10, 2, 30}, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 1, Items: 3, Base: []int64{20, 15, 2}, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	verdict := mcaverify.CheckConvergence([]*mcaverify.Agent{a0, a1}, mcaverify.CompleteGraph(2), mcaverify.CheckOptions{})
	if !verdict.OK {
		t.Fatalf("quickstart check failed: %v", verdict.Violation)
	}
}

func TestFacadeSyncRun(t *testing.T) {
	pol := mcaverify.Policy{Target: 1, Utility: mcaverify.FlatUtility{}, Rebid: mcaverify.RebidOnChange}
	var agents []*mcaverify.Agent
	for i := 0; i < 3; i++ {
		a, err := mcaverify.NewAgent(mcaverify.AgentConfig{
			ID: mcaverify.AgentID(i), Items: 2, Base: []int64{int64(10 + i), int64(20 - i)}, Policy: pol,
		})
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	g := mcaverify.RingGraph(3)
	r, err := mcaverify.NewSyncRunner(agents, g)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Run(2*mcaverify.MessageBound(g, 2) + 2)
	if !out.Converged {
		t.Fatalf("sync run did not converge: %+v", out)
	}
}

func TestFacadeAsyncRun(t *testing.T) {
	pol := mcaverify.Policy{Target: 1, Utility: mcaverify.FlatUtility{}, Rebid: mcaverify.RebidOnChange}
	var agents []*mcaverify.Agent
	for i := 0; i < 2; i++ {
		a, err := mcaverify.NewAgent(mcaverify.AgentConfig{
			ID: mcaverify.AgentID(i), Items: 1, Base: []int64{int64(5 + i)}, Policy: pol,
		})
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	out := mcaverify.RunAsync(agents, mcaverify.CompleteGraph(2), 42, 500)
	if !out.Converged {
		t.Fatalf("async run did not converge: %+v", out)
	}
}

func TestFacadeTopologies(t *testing.T) {
	if mcaverify.LineGraph(4).Diameter() != 3 {
		t.Error("line")
	}
	if mcaverify.StarGraph(5).Diameter() != 2 {
		t.Error("star")
	}
	if !mcaverify.RandomConnectedGraph(6, 0.3, 1).Connected() {
		t.Error("random connected")
	}
}

func TestFacadeModelMeasurement(t *testing.T) {
	sc := mcaverify.ModelScope{PNodes: 2, VNodes: 1, Values: 2, States: 2, Msgs: 1}
	n, err := mcaverify.BuildNaiveModel(sc)
	if err != nil {
		t.Fatal(err)
	}
	o, err := mcaverify.BuildOptimizedModel(sc)
	if err != nil {
		t.Fatal(err)
	}
	mn, mo := mcaverify.MeasureModel(n), mcaverify.MeasureModel(o)
	if mn.Clauses == 0 || mo.Clauses == 0 {
		t.Fatal("zero clause counts")
	}
	if mcaverify.PaperModelScope().PNodes != 3 {
		t.Error("paper scope")
	}
}

func TestFacadeEmbedding(t *testing.T) {
	g := mcaverify.CompleteGraph(3)
	for _, e := range g.Edges() {
		g.AddWeightedEdge(e.U, e.V, 10)
	}
	phys := &mcaverify.PhysicalNetwork{
		Graph: g,
		Nodes: []mcaverify.PhysicalNode{{CPU: 50}, {CPU: 50}, {CPU: 50}},
	}
	emb, err := mcaverify.NewEmbedder(phys, mcaverify.EmbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vnet := &mcaverify.VirtualNetwork{
		Nodes: []mcaverify.VirtualNode{{CPU: 10}, {CPU: 20}},
		Links: []mcaverify.VirtualLink{{A: 0, B: 1, Bandwidth: 2}},
	}
	m, _, err := emb.Embed(vnet)
	if err != nil {
		t.Fatal(err)
	}
	if err := mcaverify.ValidateMapping(phys, vnet, m); err != nil {
		t.Fatal(err)
	}
}

func TestViolationConstantsDistinct(t *testing.T) {
	kinds := []mcaverify.ViolationKind{
		mcaverify.ViolationNone, mcaverify.ViolationOscillation,
		mcaverify.ViolationBoundExceeded, mcaverify.ViolationDisagreement,
		mcaverify.ViolationConflict,
	}
	seen := map[mcaverify.ViolationKind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate violation constant %v", k)
		}
		seen[k] = true
	}
}

// The parallel facade must agree with the serial one.
func TestFacadeParallelConvergence(t *testing.T) {
	mk := func() []*mcaverify.Agent {
		pol := mcaverify.Policy{Target: 2, Utility: mcaverify.SubmodularResidual{}, Rebid: mcaverify.RebidOnChange}
		a0, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 0, Items: 3, Base: []int64{10, 2, 30}, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		a1, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 1, Items: 3, Base: []int64{20, 15, 2}, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		return []*mcaverify.Agent{a0, a1}
	}
	serial := mcaverify.CheckConvergence(mk(), mcaverify.CompleteGraph(2), mcaverify.CheckOptions{})
	par := mcaverify.CheckConvergenceParallel(mk(), mcaverify.CompleteGraph(2), mcaverify.CheckOptions{}, 3)
	if par.OK != serial.OK || !par.OK {
		t.Fatalf("facade parallel OK=%v, serial OK=%v", par.OK, serial.OK)
	}
}

// TestVerifyFacade drives the engine layer through the public API: one
// Scenario checked on the automatic, explicit, parallel, and
// simulation backends, all agreeing.
func TestVerifyFacade(t *testing.T) {
	pol := mcaverify.Policy{Target: 2, Utility: mcaverify.SubmodularResidual{}, Rebid: mcaverify.RebidOnChange}
	s := mcaverify.Scenario{
		Name: "facade",
		AgentSpecs: []mcaverify.AgentConfig{
			{ID: 0, Items: 2, Base: []int64{10, 15}, Policy: pol},
			{ID: 1, Items: 2, Base: []int64{15, 10}, Policy: pol},
		},
		Graph: mcaverify.CompleteGraph(2),
	}
	for _, e := range []mcaverify.Engine{nil, mcaverify.ExplicitEngine{}, mcaverify.ExplicitEngine{Workers: 2}, mcaverify.SimulationEngine{Runs: 4}} {
		res := mcaverify.Verify(context.Background(), s, e)
		if res.Status != mcaverify.ResultHolds {
			t.Fatalf("engine %v: %v (err=%v)", e, res.Status, res.Err)
		}
	}
}

// TestVerifyAllFacade sweeps a small batch, including a fault-model
// scenario, and checks the aggregate summary is coherent.
func TestVerifyAllFacade(t *testing.T) {
	pol := mcaverify.Policy{Target: 2, Utility: mcaverify.SubmodularResidual{}, Rebid: mcaverify.RebidOnChange}
	specs := []mcaverify.AgentConfig{
		{ID: 0, Items: 2, Base: []int64{10, 15}, Policy: pol},
		{ID: 1, Items: 2, Base: []int64{15, 10}, Policy: pol},
	}
	g := mcaverify.CompleteGraph(2)
	scenarios := []mcaverify.Scenario{
		{Name: "reliable", AgentSpecs: specs, Graph: g},
		{Name: "lossy", AgentSpecs: specs, Graph: g, Faults: mcaverify.NetworkFaults{Drop: 0.9}},
		{Name: "partitioned", AgentSpecs: specs, Graph: g, Faults: mcaverify.NetworkFaults{Partitions: [][]int{{0}, {1}}}},
	}
	results, sum := mcaverify.VerifyAll(context.Background(), scenarios, mcaverify.RunnerOptions{Workers: 2})
	if len(results) != len(scenarios) || sum.Total != len(scenarios) {
		t.Fatalf("result count %d, summary %+v", len(results), sum)
	}
	if results[0].Status != mcaverify.ResultHolds {
		t.Fatalf("reliable scenario: %v", results[0].Status)
	}
	if results[1].Status != mcaverify.ResultViolated || results[2].Status != mcaverify.ResultViolated {
		t.Fatalf("fault scenarios: %v, %v", results[1].Status, results[2].Status)
	}
	if sum.Holds != 1 || sum.Violated != 2 {
		t.Fatalf("summary wrong: %+v", sum)
	}
}

// TestFacadeFuzzCoverage runs a tiny coverage-guided loop through the
// public surface: the corpus is non-trivial, every corpus scenario
// round-trips through the canonical codec, and the streamed rounds
// match the result.
func TestFacadeFuzzCoverage(t *testing.T) {
	p := mcaverify.DefaultFuzzProfile()
	p.Agents = mcaverify.FuzzIntRange{Min: 2, Max: 3}
	p.Items = mcaverify.FuzzIntRange{Min: 2, Max: 2}
	p.MaxStates = mcaverify.FuzzIntRange{Min: 1000, Max: 5000}
	p.ModelProb = 0
	var streamed int
	res, err := mcaverify.FuzzCoverage(context.Background(), mcaverify.FuzzCoverageOptions{
		Profile: p, Seed: 1, Rounds: 2, PerRound: 4,
	}, func(mcaverify.FuzzRoundStats) { streamed++ })
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 2 || len(res.Rounds) != 2 {
		t.Fatalf("streamed %d rounds, result has %d", streamed, len(res.Rounds))
	}
	if len(res.Buckets) == 0 || len(res.Corpus) == 0 {
		t.Fatalf("empty coverage run: %d buckets, %d corpus", len(res.Buckets), len(res.Corpus))
	}
	for i := range res.Corpus {
		data, err := mcaverify.EncodeScenario(&res.Corpus[i])
		if err != nil {
			t.Fatalf("corpus[%d]: %v", i, err)
		}
		if _, err := mcaverify.DecodeScenario(data); err != nil {
			t.Fatalf("corpus[%d] does not round-trip: %v", i, err)
		}
	}
}
