// Virtual network mapping: the paper's case study end to end.
//
// Five federated infrastructure providers (physical nodes) auction the
// virtual nodes of an incoming slice request with MCA, then map the
// virtual links onto loop-free physical paths with k-shortest paths —
// the distributed embedding workflow of Section II-B.
//
// Run with: go run ./examples/vnmapping
package main

import (
	"fmt"
	"log"

	mcaverify "repro"
)

func main() {
	// Substrate: five providers in a partial mesh; edge weights are link
	// bandwidth capacities.
	g := mcaverify.RingGraph(5)
	for _, e := range g.Edges() {
		g.AddWeightedEdge(e.U, e.V, 10)
	}
	g.AddWeightedEdge(0, 2, 4) // a thin chord
	phys := &mcaverify.PhysicalNetwork{
		Graph: g,
		Nodes: []mcaverify.PhysicalNode{
			{CPU: 100}, {CPU: 60}, {CPU: 80}, {CPU: 40}, {CPU: 120},
		},
	}

	// Request: a three-node virtual network with two virtual links.
	vnet := &mcaverify.VirtualNetwork{
		Nodes: []mcaverify.VirtualNode{{CPU: 30}, {CPU: 25}, {CPU: 50}},
		Links: []mcaverify.VirtualLink{
			{A: 0, B: 1, Bandwidth: 5},
			{A: 1, B: 2, Bandwidth: 5},
		},
	}

	emb, err := mcaverify.NewEmbedder(phys, mcaverify.EmbedOptions{KPaths: 4})
	if err != nil {
		log.Fatal(err)
	}
	m, out, err := emb.Embed(vnet)
	if err != nil {
		log.Fatalf("embedding failed: %v", err)
	}
	if err := mcaverify.ValidateMapping(phys, vnet, m); err != nil {
		log.Fatalf("invalid mapping: %v", err)
	}

	fmt.Printf("auction converged in %d rounds (%d messages)\n", out.Rounds, out.Messages)
	for j, p := range m.NodeMap {
		fmt.Printf("  virtual node %d (cpu %d) -> provider %d (cpu %d)\n",
			j, vnet.Nodes[j].CPU, p, phys.Nodes[p].CPU)
	}
	for li, p := range m.LinkPaths {
		l := vnet.Links[li]
		fmt.Printf("  virtual link %d-%d (bw %.0f) -> physical path %v\n",
			l.A, l.B, l.Bandwidth, p.Nodes)
	}
}
