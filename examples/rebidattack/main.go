// Rebid attack: Result 2 of the paper.
//
// The Remark 1 condition — no rebidding on items you were outbid on —
// is necessary for consensus. This program removes it (RebidAlways with
// an escalating bid generator) and shows, by exhaustive exploration,
// that consensus is no longer reached within the paper's D·|J| message
// bound: a malicious or misconfigured agent can deny service by
// rebidding forever. The honest control configuration verifies.
//
// Run with: go run ./examples/rebidattack
package main

import (
	"fmt"
	"log"

	mcaverify "repro"
)

func main() {
	fmt.Println("Result 2: the rebidding attack (one item on auction)")

	// Control: two honest agents. The higher valuation wins, consensus
	// verified over all interleavings.
	honest := mcaverify.Policy{Target: 1, Utility: mcaverify.FlatUtility{}, Rebid: mcaverify.RebidOnChange}
	a0, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 0, Items: 1, Base: []int64{10}, Policy: honest})
	if err != nil {
		log.Fatal(err)
	}
	a1, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 1, Items: 1, Base: []int64{5}, Policy: honest})
	if err != nil {
		log.Fatal(err)
	}
	v := mcaverify.CheckConvergence([]*mcaverify.Agent{a0, a1}, mcaverify.CompleteGraph(2), mcaverify.CheckOptions{})
	fmt.Printf("  honest control:        OK=%v (violation=%v, %d states)\n", v.OK, v.Violation, v.States)

	// Attack: both agents rebid on lost items, overbidding whatever they
	// see (the Remark 1 condition removed from the model).
	attack := mcaverify.Policy{
		Target:  1,
		Utility: mcaverify.EscalatingUtility{Cap: 1 << 20},
		Rebid:   mcaverify.RebidAlways,
	}
	b0, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 0, Items: 1, Base: []int64{10}, Policy: attack})
	if err != nil {
		log.Fatal(err)
	}
	b1, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 1, Items: 1, Base: []int64{5}, Policy: attack})
	if err != nil {
		log.Fatal(err)
	}
	v = mcaverify.CheckConvergence([]*mcaverify.Agent{b0, b1}, mcaverify.CompleteGraph(2), mcaverify.CheckOptions{})
	fmt.Printf("  rebidding attack:      OK=%v (violation=%v, %d states)\n", v.OK, v.Violation, v.States)
	if v.Trace != nil {
		fmt.Println("\n  counterexample prefix (bids escalate without consensus):")
		fmt.Println(v.Trace.Summary())
	}

	// A single attacker against a passive honest agent hijacks the item:
	// consensus happens, but at the attacker's price — the protocol is
	// not incentive-resilient either.
	c0, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 0, Items: 1, Base: []int64{10}, Policy: honest})
	if err != nil {
		log.Fatal(err)
	}
	c1, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 1, Items: 1, Base: []int64{5}, Policy: attack})
	if err != nil {
		log.Fatal(err)
	}
	v = mcaverify.CheckConvergence([]*mcaverify.Agent{c0, c1}, mcaverify.CompleteGraph(2), mcaverify.CheckOptions{})
	// The checker restores agent state; run one concrete execution to
	// show who ends up with the item.
	d0, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 0, Items: 1, Base: []int64{10}, Policy: honest})
	if err != nil {
		log.Fatal(err)
	}
	d1, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 1, Items: 1, Base: []int64{5}, Policy: attack})
	if err != nil {
		log.Fatal(err)
	}
	mcaverify.RunAsync([]*mcaverify.Agent{d0, d1}, mcaverify.CompleteGraph(2), 7, 500)
	winner := d1.View()[0]
	fmt.Printf("  single attacker:       OK=%v — item hijacked by agent %d at bid %d\n", v.OK, winner.Winner, winner.Bid)
}
