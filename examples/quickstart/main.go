// Quickstart: the paper's Fig. 1 worked example through the public API.
//
// Two agents independently bid on three items (A, B, C) and exchange
// their bid and allocation vectors with the max-consensus auction. After
// one exchange the views agree: b = (20, 15, 30), winners = (2, 2, 1).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mcaverify "repro"
)

func main() {
	items := []string{"A", "B", "C"}
	pol := mcaverify.Policy{
		Target:  2, // each agent may win at most two items (p_T)
		Utility: mcaverify.FlatUtility{},
		Rebid:   mcaverify.RebidOnChange,
	}

	// Agent 1 values A at 10 and C at 30; agent 2 values A at 20, B at 15.
	a1, err := mcaverify.NewAgent(mcaverify.AgentConfig{
		ID: 0, Items: 3, Base: []int64{10, 0, 30}, Policy: pol,
	})
	if err != nil {
		log.Fatal(err)
	}
	a2, err := mcaverify.NewAgent(mcaverify.AgentConfig{
		ID: 1, Items: 3, Base: []int64{20, 15, 0}, Policy: pol,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Bidding phase: each agent greedily fills its bundle.
	a1.BidPhase()
	a2.BidPhase()
	fmt.Println("after the bidding phase:")
	printViews(items, a1, a2)

	// Agreement phase: one snapshot exchange (the agents are neighbors).
	m12 := a1.Snapshot(1)
	m21 := a2.Snapshot(0)
	a1.HandleMessage(m21)
	a2.HandleMessage(m12)
	fmt.Println("\nafter one consensus exchange:")
	printViews(items, a1, a2)

	if a1.AgreesWith(a2) {
		fmt.Println("\nmax-consensus reached: the allocation is conflict-free.")
	} else {
		fmt.Println("\nagents still disagree (unexpected for Fig. 1).")
	}
}

func printViews(items []string, agents ...*mcaverify.Agent) {
	for _, a := range agents {
		fmt.Printf("  agent %d: ", a.ID()+1)
		for j, bi := range a.View() {
			if bi.Winner == mcaverify.NoAgent {
				fmt.Printf("%s=(--) ", items[j])
			} else {
				fmt.Printf("%s=(bid %d by agent %d) ", items[j], bi.Bid, bi.Winner+1)
			}
		}
		fmt.Printf(" bundle=%v\n", a.Won())
	}
}
