// Model finder: the relational/SAT layer standalone.
//
// The program builds the paper's MCA Alloy model at the analysis scope
// (3 physical nodes, 2 virtual nodes) in both encodings Section IV
// compares — wide relations with Alloy-style Int versus the
// bidTriple/value factoring — and prints the translation sizes and the
// consensus check outcome, reproducing the abstraction-efficiency
// experiment.
//
// Run with: go run ./examples/modelfinder
package main

import (
	"fmt"
	"log"

	mcaverify "repro"
)

func main() {
	scope := mcaverify.PaperModelScope()
	fmt.Printf("MCA relational model at scope %s\n\n", scope)

	naive, err := mcaverify.BuildNaiveModel(scope)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := mcaverify.BuildOptimizedModel(scope)
	if err != nil {
		log.Fatal(err)
	}

	mn := mcaverify.MeasureModel(naive)
	mo := mcaverify.MeasureModel(opt)
	fmt.Println("translation sizes (facts ∧ ¬consensus):")
	fmt.Printf("  %s\n  %s\n", mn, mo)
	fmt.Printf("\nclause reduction from the optimized abstractions: %.1f%%\n",
		100*(1-float64(mo.Clauses)/float64(mn.Clauses)))
	fmt.Println("(the paper reports 259K → 190K ≈ 27% at the same scope,")
	fmt.Println(" with the check time dropping from about a day to under two hours)")
}
