// Policy sweep: Result 1 of the paper, push-button, on the engine
// layer.
//
// The program builds one verification Scenario per combination of the
// utility policy (sub-modular vs non-sub-modular) and the
// release-outbid policy, and verifies the whole batch on the runner's
// worker pool. Exactly one combination fails — non-sub-modular bidding
// with release-outbid — and the program prints its oscillation
// counterexample, the paper's Fig. 2. A second sweep rechecks every
// combination under an adversarial network (message drops), where
// convergence degrades for all of them.
//
// Run with: go run ./examples/policysweep
package main

import (
	"context"
	"fmt"

	mcaverify "repro"
)

func main() {
	type combo struct {
		util    mcaverify.Utility
		release bool
	}
	combos := []combo{
		{mcaverify.SubmodularResidual{}, false},
		{mcaverify.SubmodularResidual{}, true},
		{mcaverify.NonSubmodularSynergy{}, false},
		{mcaverify.NonSubmodularSynergy{}, true},
	}

	// One Scenario per combination: the Fig. 2 valuation pattern (each
	// agent's preferred item is the other's second choice).
	scenarios := make([]mcaverify.Scenario, len(combos))
	for i, c := range combos {
		pol := mcaverify.Policy{
			Target:        2,
			Utility:       c.util,
			ReleaseOutbid: c.release,
			Rebid:         mcaverify.RebidOnChange,
		}
		scenarios[i] = mcaverify.Scenario{
			Name: fmt.Sprintf("%s/release=%v", c.util.Name(), c.release),
			AgentSpecs: []mcaverify.AgentConfig{
				{ID: 0, Items: 2, Base: []int64{10, 15}, Policy: pol},
				{ID: 1, Items: 2, Base: []int64{15, 10}, Policy: pol},
			},
			Graph: mcaverify.CompleteGraph(2),
		}
	}

	fmt.Println("MCA convergence under policy combinations (2 agents, 2 items):")
	fmt.Printf("%-26s %-14s %s\n", "utility (p_u)", "release (p_RO)", "verdict")

	results, _ := mcaverify.VerifyAll(context.Background(), scenarios, mcaverify.RunnerOptions{})
	var oscillation *mcaverify.Result
	for i, res := range results {
		verdict := "converges (verified)"
		if res.Status != mcaverify.ResultHolds {
			verdict = fmt.Sprintf("FAILS (%v)", res.Violation)
			if res.Violation == mcaverify.ViolationOscillation {
				vv := res
				oscillation = &vv
			}
		}
		fmt.Printf("%-26s %-14v %s\n", combos[i].util.Name(), combos[i].release, verdict)
	}

	if oscillation != nil {
		fmt.Println("\noscillation counterexample (the paper's Fig. 2):")
		fmt.Println(oscillation.Trace.String())
	}

	// The same sweep under an adversarial network: 30% message loss,
	// checked by seeded simulation — conditions the paper's Alloy model
	// cannot express.
	for i := range scenarios {
		scenarios[i].Faults = mcaverify.NetworkFaults{Drop: 0.3}
	}
	fmt.Println("same sweep under 30% message loss (seeded simulation):")
	results, sum := mcaverify.VerifyAll(context.Background(), scenarios, mcaverify.RunnerOptions{})
	for i, res := range results {
		fmt.Printf("%-26s %-14v converged %d/%d runs\n",
			combos[i].util.Name(), combos[i].release, res.Stats.Converged, res.Stats.Runs)
	}
	fmt.Printf("sweep summary: %d holds, %d violated of %d scenarios\n",
		sum.Holds, sum.Violated, sum.Total)
}
