// Policy sweep: Result 1 of the paper, push-button.
//
// The program verifies the MCA convergence property under every
// combination of the utility policy (sub-modular vs non-sub-modular) and
// the release-outbid policy, by exhaustively exploring all asynchronous
// message interleavings. Exactly one combination fails — non-sub-modular
// bidding with release-outbid — and the program prints its oscillation
// counterexample, the paper's Fig. 2.
//
// Run with: go run ./examples/policysweep
package main

import (
	"fmt"
	"log"

	mcaverify "repro"
)

func main() {
	type combo struct {
		util    mcaverify.Utility
		release bool
	}
	combos := []combo{
		{mcaverify.SubmodularResidual{}, false},
		{mcaverify.SubmodularResidual{}, true},
		{mcaverify.NonSubmodularSynergy{}, false},
		{mcaverify.NonSubmodularSynergy{}, true},
	}

	fmt.Println("MCA convergence under policy combinations (2 agents, 2 items):")
	fmt.Printf("%-26s %-14s %s\n", "utility (p_u)", "release (p_RO)", "verdict")

	var oscillation *mcaverify.Verdict
	for _, c := range combos {
		pol := mcaverify.Policy{
			Target:        2,
			Utility:       c.util,
			ReleaseOutbid: c.release,
			Rebid:         mcaverify.RebidOnChange,
		}
		// The Fig. 2 valuation pattern: each agent's preferred item is the
		// other's second choice.
		a1, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 0, Items: 2, Base: []int64{10, 15}, Policy: pol})
		if err != nil {
			log.Fatal(err)
		}
		a2, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 1, Items: 2, Base: []int64{15, 10}, Policy: pol})
		if err != nil {
			log.Fatal(err)
		}
		v := mcaverify.CheckConvergence([]*mcaverify.Agent{a1, a2}, mcaverify.CompleteGraph(2), mcaverify.CheckOptions{})
		verdict := "converges (verified)"
		if !v.OK {
			verdict = fmt.Sprintf("FAILS (%v)", v.Violation)
			if v.Violation == mcaverify.ViolationOscillation {
				vv := v
				oscillation = &vv
			}
		}
		fmt.Printf("%-26s %-14v %s\n", c.util.Name(), c.release, verdict)
	}

	if oscillation != nil {
		fmt.Println("\noscillation counterexample (the paper's Fig. 2):")
		fmt.Println(oscillation.Trace.String())
	}
}
