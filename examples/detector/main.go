// Detector: the countermeasure the paper leaves as an open question.
//
// Footnote 7 of the paper sketches a defense against rebidding attacks:
// sign messages and keep the bidding history of the first-hop
// neighborhood, then ignore invalid rebids. This example runs an
// escalating rebid attacker against an honest agent while the honest
// agent feeds every received message through a Detector, and prints the
// evidence that convicts the attacker.
//
// Run with: go run ./examples/detector
package main

import (
	"fmt"
	"log"

	mcaverify "repro"
)

func main() {
	honestPol := mcaverify.Policy{Target: 1, Utility: mcaverify.FlatUtility{}, Rebid: mcaverify.RebidOnChange}
	attackPol := mcaverify.Policy{Target: 1, Utility: mcaverify.EscalatingUtility{Cap: 100}, Rebid: mcaverify.RebidAlways}

	honest, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 0, Items: 1, Base: []int64{10}, Policy: honestPol})
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := mcaverify.NewAgent(mcaverify.AgentConfig{ID: 1, Items: 1, Base: []int64{5}, Policy: attackPol})
	if err != nil {
		log.Fatal(err)
	}

	det := mcaverify.NewDetector(honest.ID(), 1)
	honest.BidPhase()
	attacker.BidPhase()

	fmt.Println("agent 0 (honest, values the item at 10) vs agent 1 (rebid attacker)")
	for round := 1; round <= 5; round++ {
		fromAttacker := attacker.Snapshot(honest.ID())
		fromHonest := honest.Snapshot(attacker.ID())
		violations := det.Observe(fromAttacker, honest.View())
		honest.HandleMessage(fromAttacker)
		attacker.HandleMessage(fromHonest)

		entry := fromAttacker.View[0]
		state := "free"
		if entry.Winner != mcaverify.NoAgent {
			state = fmt.Sprintf("agent %d at %d", entry.Winner, entry.Bid)
		}
		fmt.Printf("round %d: attacker reports item held by %s", round, state)
		if len(violations) > 0 {
			fmt.Printf("  <-- REMARK 1 VIOLATION: %s", violations[0])
		}
		fmt.Println()
	}

	if det.IsFlagged(attacker.ID()) {
		fmt.Printf("\nattacker flagged with %d piece(s) of evidence; per the paper's\n", len(det.Evidence(attacker.ID())))
		fmt.Println("countermeasure its subsequent bid messages would be ignored.")
	} else {
		fmt.Println("\nattacker not flagged (unexpected)")
	}
}
