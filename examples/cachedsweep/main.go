// Cached sweep: scenarios as data, verified twice — the second pass
// served from the content-addressed result cache.
//
// The program demonstrates the full scenario-as-data loop:
//
//  1. a scenario is built in Go, encoded to canonical JSON with
//     EncodeScenario, and decoded back (the bytes are what mcacheck
//     -scenario and mcaserved /verify consume);
//  2. a sweep document (a base scenario plus policy × network axes) is
//     expanded into its scenario grid with ExpandSweep;
//  3. the grid runs twice through a Runner wired to a verification
//     cache — the cold pass verifies every cell, the warm pass is pure
//     cache hits and finishes orders of magnitude faster.
//
// Run with: go run ./examples/cachedsweep
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	mcaverify "repro"
)

const sweepDoc = `{
  "version": 1,
  "name": "cached-demo",
  "base": {
    "agents": [
      {"id": 0, "items": 2, "base": [10, 15],
       "policy": {"target": 2, "utility": {"kind": "submodular-residual"}, "release_outbid": true, "rebid": "on-change"}},
      {"id": 1, "items": 2, "base": [15, 10],
       "policy": {"target": 2, "utility": {"kind": "submodular-residual"}, "release_outbid": true, "rebid": "on-change"}}
    ],
    "graph": {"nodes": 2, "edges": [{"u": 0, "v": 1}]}
  },
  "axes": [
    {"axis": "policy", "variants": [
      {"name": "submodular", "scenario": {}},
      {"name": "synergy", "scenario": {"agents": [
        {"id": 0, "items": 2, "base": [10, 15],
         "policy": {"target": 2, "utility": {"kind": "non-submodular-synergy"}, "release_outbid": true, "rebid": "on-change"}},
        {"id": 1, "items": 2, "base": [15, 10],
         "policy": {"target": 2, "utility": {"kind": "non-submodular-synergy"}, "release_outbid": true, "rebid": "on-change"}}
      ]}}
    ]},
    {"axis": "network", "variants": [
      {"name": "reliable", "scenario": {}},
      {"name": "drop20", "scenario": {"faults": {"drop": 0.2}}},
      {"name": "drop40", "scenario": {"faults": {"drop": 0.4}}},
      {"name": "delay2", "scenario": {"faults": {"delay": 2}}}
    ]},
    {"axis": "mode", "variants": [
      {"name": "plain", "scenario": {}},
      {"name": "at-least-once", "scenario": {"explore": {"duplicate_deliveries": true}}}
    ]}
  ]
}`

func main() {
	ctx := context.Background()

	// 1. One scenario as canonical JSON and back.
	pol := mcaverify.Policy{Target: 2, Utility: mcaverify.SubmodularResidual{}, ReleaseOutbid: true, Rebid: mcaverify.RebidOnChange}
	s := mcaverify.Scenario{
		Name: "codec-demo",
		AgentSpecs: []mcaverify.AgentConfig{
			{ID: 0, Items: 2, Base: []int64{10, 15}, Policy: pol},
			{ID: 1, Items: 2, Base: []int64{15, 10}, Policy: pol},
		},
		Graph: mcaverify.CompleteGraph(2),
	}
	data, err := mcaverify.EncodeScenario(&s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canonical scenario document (%d bytes):\n%s\n\n", len(data), data)
	decoded, err := mcaverify.DecodeScenario(data)
	if err != nil {
		log.Fatal(err)
	}
	res := mcaverify.Verify(ctx, decoded, nil)
	fmt.Printf("decoded scenario verifies: %v (%d states)\n\n", res.Status, res.Stats.States)

	// 2. A sweep document expands into its grid.
	scenarios, err := mcaverify.ExpandSweep([]byte(sweepDoc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep grid: %d scenarios (policy x network x delivery mode)\n", len(scenarios))

	// 3. Cold pass vs warm pass over the result cache.
	c, err := mcaverify.NewCache(mcaverify.CacheOptions{Capacity: 1024})
	if err != nil {
		log.Fatal(err)
	}
	runner := mcaverify.NewRunner(mcaverify.RunnerOptions{Workers: 4, Cache: c})

	start := time.Now()
	_, coldSum := runner.Run(ctx, scenarios)
	cold := time.Since(start)

	start = time.Now()
	_, warmSum := runner.Run(ctx, scenarios)
	warm := time.Since(start)

	fmt.Printf("cold pass: %d holds, %d violated, %d cache hits in %v\n",
		coldSum.Holds, coldSum.Violated, coldSum.CacheHits, cold.Round(time.Microsecond))
	fmt.Printf("warm pass: %d holds, %d violated, %d cache hits in %v\n",
		warmSum.Holds, warmSum.Violated, warmSum.CacheHits, warm.Round(time.Microsecond))
	if warm > 0 {
		fmt.Printf("speedup: %.0fx\n", float64(cold)/float64(warm))
	}
	st := c.Stats()
	fmt.Printf("cache: %d entries, %d hits, %d misses, %d puts\n", st.Entries, st.Hits, st.Misses, st.Puts)
}
