package mcaverify_test

import (
	"context"
	"fmt"

	mcaverify "repro"
)

// ExampleVerify checks one scenario on the natural backend: two honest
// agents with mirrored valuations agree on every asynchronous message
// interleaving.
func ExampleVerify() {
	pol := mcaverify.Policy{
		Target:        2,
		Utility:       mcaverify.SubmodularResidual{},
		ReleaseOutbid: true,
		Rebid:         mcaverify.RebidOnChange,
	}
	s := mcaverify.Scenario{
		Name: "demo",
		AgentSpecs: []mcaverify.AgentConfig{
			{ID: 0, Items: 2, Base: []int64{10, 15}, Policy: pol},
			{ID: 1, Items: 2, Base: []int64{15, 10}, Policy: pol},
		},
		Graph: mcaverify.CompleteGraph(2),
	}
	res := mcaverify.Verify(context.Background(), s, nil) // nil = natural backend
	fmt.Println(res.Engine, res.Status)
	// Output: explicit holds
}

// ExampleNewRunner sweeps a small scenario batch over a worker pool;
// the aggregate is identical at any worker count.
func ExampleNewRunner() {
	honest := mcaverify.Policy{Target: 2, Utility: mcaverify.SubmodularResidual{}, ReleaseOutbid: true, Rebid: mcaverify.RebidOnChange}
	greedy := honest
	greedy.Utility = mcaverify.NonSubmodularSynergy{} // violates Definition 2
	scenarios := make([]mcaverify.Scenario, 0, 2)
	for _, v := range []struct {
		name string
		pol  mcaverify.Policy
	}{{"honest", honest}, {"greedy", greedy}} {
		scenarios = append(scenarios, mcaverify.Scenario{
			Name: v.name,
			AgentSpecs: []mcaverify.AgentConfig{
				{ID: 0, Items: 2, Base: []int64{10, 15}, Policy: v.pol},
				{ID: 1, Items: 2, Base: []int64{15, 10}, Policy: v.pol},
			},
			Graph: mcaverify.CompleteGraph(2),
		})
	}
	runner := mcaverify.NewRunner(mcaverify.RunnerOptions{Workers: 2})
	_, sum := runner.Run(context.Background(), scenarios)
	fmt.Printf("total=%d holds=%d violated=%d failing=%v\n", sum.Total, sum.Holds, sum.Violated, sum.Scenarios)
	// Output: total=2 holds=1 violated=1 failing=[greedy]
}

// ExampleDecodeScenario parses a canonical scenario document — the
// format mcacheck -scenario and mcaserved consume (docs/SCENARIO_FORMAT.md).
func ExampleDecodeScenario() {
	doc := `{
	  "version": 1,
	  "name": "line3",
	  "agents": [
	    {"id": 0, "items": 2, "base": [10, 15], "policy": {"target": 2, "utility": {"kind": "submodular-residual"}, "rebid": "on-change"}},
	    {"id": 1, "items": 2, "base": [15, 10], "policy": {"target": 2, "utility": {"kind": "submodular-residual"}, "rebid": "on-change"}},
	    {"id": 2, "items": 2, "base": [12, 12], "policy": {"target": 1, "utility": {"kind": "flat"}, "rebid": "on-change"}}
	  ],
	  "graph": {"nodes": 3, "edges": [{"u": 0, "v": 1}, {"u": 1, "v": 2}]}
	}`
	s, err := mcaverify.DecodeScenario([]byte(doc))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %d agents on %d edges\n", s.Name, len(s.AgentSpecs), s.Graph.M())
	// Output: line3: 3 agents on 2 edges
}

// ExampleExpandSweep expands a sweep document — one base scenario and
// axes of named variants — into the cartesian scenario grid.
func ExampleExpandSweep() {
	doc := `{
	  "version": 1,
	  "name": "demo-sweep",
	  "base": {
	    "name": "base",
	    "agents": [
	      {"id": 0, "items": 2, "base": [10, 15], "policy": {"target": 2, "utility": {"kind": "submodular-residual"}, "rebid": "on-change"}},
	      {"id": 1, "items": 2, "base": [15, 10], "policy": {"target": 2, "utility": {"kind": "submodular-residual"}, "rebid": "on-change"}}
	    ],
	    "graph": {"nodes": 2, "edges": [{"u": 0, "v": 1}]}
	  },
	  "axes": [
	    {"axis": "net", "variants": [
	      {"name": "reliable", "scenario": {}},
	      {"name": "lossy", "scenario": {"faults": {"drop": 0.2}}}
	    ]},
	    {"axis": "delivery", "variants": [
	      {"name": "exact", "scenario": {}},
	      {"name": "dup", "scenario": {"explore": {"duplicate_deliveries": true}}}
	    ]}
	  ]
	}`
	grid, err := mcaverify.ExpandSweep([]byte(doc))
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, s := range grid {
		fmt.Println(s.Name)
	}
	// Output:
	// base/reliable/exact
	// base/reliable/dup
	// base/lossy/exact
	// base/lossy/dup
}

// ExampleGenerate manufactures a seeded random corpus: same profile and
// seed, same scenarios — byte-for-byte under the canonical codec.
func ExampleGenerate() {
	profile := mcaverify.DefaultFuzzProfile()
	profile.Agents = mcaverify.FuzzIntRange{Min: 2, Max: 4}
	scenarios, err := mcaverify.Generate(profile, 1, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, s := range scenarios {
		fmt.Printf("%s: %d agents, %d items, faults=%v\n",
			s.Name, len(s.AgentSpecs), s.AgentSpecs[0].Items, !s.Faults.None())
	}
	// Output:
	// fuzz-s1-0000: 2 agents, 2 items, faults=false
	// fuzz-s1-0001: 3 agents, 3 items, faults=false
	// fuzz-s1-0002: 3 agents, 3 items, faults=false
}
